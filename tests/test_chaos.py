"""Chaos harness: generation, oracles, verdicts, shrinking, replay.

End-to-end campaign behaviour (25 scenarios, selftest, CLI) lives in
``make chaos-smoke``; this suite pins the harness mechanics at unit
size: deterministic scenario draws, serialisation roundtrips, oracle
classification, the shrink/replay pipeline against a sabotaged run,
and campaign checkpoint restore.
"""

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.chaos import (
    ORACLES,
    Scenario,
    ScenarioSpace,
    check_accounting,
    classify_error,
    generate,
    load_repro,
    replay,
    run_campaign,
    run_scenario,
    sabotage_scenario,
    shrink,
    write_repro,
)
from repro.errors import (
    ChaosFailure,
    ConfigurationError,
    DeadlockError,
    FlowControlError,
    InvariantViolation,
    PointTimeoutError,
    RoutingError,
    SimulationError,
)
from repro.experiments.resilience import SweepCheckpoint

# small-and-fast variants for unit tests; the smoke campaign covers the
# full default space
TINY_SCENARIO = Scenario(
    key="tiny",
    seed=7,
    topology="single",
    num_ports=4,
    vcs_per_pc=4,
    load=0.5,
    mix=(80.0, 20.0),
    message_size=8,
    measure_frames=1,
)

TINY_SPACE = ScenarioSpace(
    topologies=("single",),
    num_ports_choices=(4,),
    vcs_choices=(4,),
    mixes=((80.0, 20.0),),
    message_sizes=(8,),
    max_measure_frames=1,
    zero_fault_fraction=1.0,
    health_fraction=0.0,
)


class TestGeneration:
    def test_same_seed_same_stream(self):
        space = ScenarioSpace()
        assert generate(space, 7, 6) == generate(space, 7, 6)
        assert generate(space, 7, 6) != generate(space, 8, 6)

    def test_draws_are_index_isolated(self):
        # per-index string seeding: a longer stream is an extension of
        # a shorter one, never a reshuffle
        space = ScenarioSpace()
        assert generate(space, 7, 8)[:3] == generate(space, 7, 3)

    def test_keys_are_stable_and_unique(self):
        scenarios = generate(ScenarioSpace(), 7, 12)
        keys = [s.key for s in scenarios]
        assert keys == [f"s{i:03d}" for i in range(12)]

    def test_roundtrips_through_json(self):
        for scenario in generate(ScenarioSpace(), 7, 10):
            wire = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(wire) == scenario

    def test_faulted_scenarios_are_well_formed(self):
        space = dataclasses.replace(TINY_SPACE, zero_fault_fraction=0.0)
        scenarios = generate(space, 7, 8)
        assert all(not s.is_zero_fault for s in scenarios)
        for scenario in scenarios:
            # generator invariants: recovery transport always attached,
            # down windows always finite
            assert scenario.recovery is not None
            for window in scenario.faults.down_windows:
                assert window.end > window.start
            # the plan addresses real links: experiment assembly (which
            # validates against the topology at run time) must not balk
            scenario.to_experiment()

    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="topology"):
            dataclasses.replace(TINY_SCENARIO, topology="torus")

    def test_unknown_sabotage_rejected(self):
        with pytest.raises(ConfigurationError, match="sabotage"):
            dataclasses.replace(TINY_SCENARIO, sabotage="nonsense")

    def test_from_dict_rejects_unknown_format(self):
        data = TINY_SCENARIO.to_dict()
        data["format"] = "mediaworm-chaos-scenario-v999"
        with pytest.raises(ConfigurationError, match="format"):
            Scenario.from_dict(data)

    def test_experiment_carries_watchdog_and_checker(self):
        experiment = TINY_SCENARIO.to_experiment()
        interval = experiment.workload_config().frame_interval_cycles
        assert experiment.watchdog_window == 4 * interval
        assert experiment.trace is not None and experiment.trace.check
        assert experiment.network_hook is None
        sabotaged = dataclasses.replace(TINY_SCENARIO, sabotage="credit")
        assert sabotaged.to_experiment().network_hook is not None


class TestOracles:
    def test_classify_error_taxonomy(self):
        cases = [
            (InvariantViolation("x"), "invariant"),
            (DeadlockError("x"), "deadlock"),
            (PointTimeoutError("x"), "timeout"),
            (FlowControlError("x"), "flow-control"),
            (RoutingError("x"), "routing"),
            (ConfigurationError("x"), "config"),
            (SimulationError("x"), "simulation"),
            (ValueError("x"), "crash"),
        ]
        for exc, expected in cases:
            oracle = classify_error(exc)
            assert oracle == expected
            assert oracle in ORACLES

    @staticmethod
    def _result(injected=100, ejected=100, stats=None):
        return SimpleNamespace(
            flits_injected=injected,
            flits_ejected=ejected,
            fault_stats=stats,
        )

    @staticmethod
    def _transport(**overrides):
        stats = {
            "flits_lost": 4,
            "delivered": 10,
            "qos_delivered": 8,
            "be_delivered": 2,
            "abandoned": 1,
            "qos_abandoned": 0,
            "be_abandoned": 1,
            "qos_deadline_misses": 3,
            "delivered_fraction": 0.9,
            "qos_delivered_fraction": 0.95,
        }
        stats.update(overrides)
        return stats

    def test_balanced_books_pass(self):
        assert check_accounting(self._result()) is None
        assert (
            check_accounting(
                self._result(injected=100, ejected=96, stats=self._transport())
            )
            is None
        )

    def test_flit_conservation_violation(self):
        detail = check_accounting(
            self._result(injected=100, ejected=99, stats={"flits_lost": 4})
        )
        assert detail is not None and "don't balance" in detail

    def test_transport_split_must_match_totals(self):
        broken = self._transport(qos_delivered=9)
        detail = check_accounting(self._result(ejected=96, stats=broken))
        assert detail is not None and "class split" in detail

    def test_deadline_misses_bounded_by_deliveries(self):
        broken = self._transport(qos_deadline_misses=9)
        detail = check_accounting(self._result(ejected=96, stats=broken))
        assert detail is not None and "deadline misses" in detail

    def test_fractions_must_be_in_range(self):
        broken = self._transport(delivered_fraction=1.2)
        detail = check_accounting(self._result(ejected=96, stats=broken))
        assert detail is not None and "out of range" in detail

    def test_degradation_without_symptoms_flagged(self):
        stats = {
            "flits_lost": 0,
            "health": {"link_downs": 0, "streams_shed": 2},
        }
        detail = check_accounting(self._result(stats=stats))
        assert detail is not None and "without symptoms" in detail

    def test_readmission_bounded_by_shedding(self):
        stats = {
            "flits_lost": 0,
            "health": {
                "link_downs": 3,
                "streams_shed": 1,
                "streams_readmitted": 2,
            },
        }
        detail = check_accounting(self._result(stats=stats))
        assert detail is not None and "readmitted" in detail


class TestRunScenario:
    def test_zero_fault_scenario_passes_with_digest(self):
        verdict = run_scenario(TINY_SCENARIO)
        assert verdict["status"] == "pass", verdict["detail"]
        assert verdict["oracle"] is None
        assert verdict["digest"] is not None
        assert verdict["digest"]["flits_injected"] > 0
        # verdicts are checkpoint payloads; they must be JSON-plain
        json.dumps(verdict)

    def test_verdicts_are_deterministic(self):
        first = run_scenario(TINY_SCENARIO)
        second = run_scenario(TINY_SCENARIO)
        assert first["digest"] == second["digest"]

    def test_sabotage_is_caught_by_the_invariant_oracle(self):
        verdict = run_scenario(
            dataclasses.replace(TINY_SCENARIO, sabotage="credit")
        )
        assert verdict["status"] == "fail"
        assert verdict["oracle"] == "invariant"
        assert "credit" in verdict["detail"]

    def test_sabotage_scenario_requires_a_known_kind(self):
        with pytest.raises(ConfigurationError, match="sabotage"):
            sabotage_scenario("nonsense")


class TestShrinkAndReplay:
    @pytest.fixture(scope="class")
    def caught(self):
        """One sabotaged run through catch -> shrink (shared, read-only)."""
        scenario = dataclasses.replace(
            TINY_SCENARIO, key="sabotage-tiny", sabotage="credit"
        )
        verdict = run_scenario(scenario)
        assert verdict["status"] == "fail"
        minimal, trail = shrink(scenario, verdict["oracle"], budget=8)
        return scenario, verdict, minimal, trail

    def test_shrink_preserves_the_failure_ingredient(self, caught):
        scenario, verdict, minimal, trail = caught
        # the sabotage is the root cause; no shrink pass may remove it
        assert minimal.sabotage == "credit"
        assert "no-sabotage" not in trail
        final = run_scenario(minimal)
        assert final["status"] == "fail"
        assert final["oracle"] == verdict["oracle"]

    def test_repro_roundtrip_and_replay_match(self, caught, tmp_path):
        _, _, minimal, trail = caught
        final = run_scenario(minimal)
        path = write_repro(
            str(tmp_path), minimal, final, trail=trail, campaign={"t": 1}
        )
        loaded, recorded = load_repro(path)
        assert loaded == minimal
        assert recorded["oracle"] == "invariant"
        ok, message, actual = replay(path)
        assert ok, message
        assert actual["oracle"] == "invariant"

    def test_replay_flags_a_failure_that_no_longer_reproduces(
        self, tmp_path
    ):
        # a repro recorded as failing, whose scenario now passes, must
        # mismatch — that is how a fixed bug retires a corpus entry
        stale = {
            "key": TINY_SCENARIO.key,
            "status": "fail",
            "oracle": "invariant",
            "detail": "recorded failure",
            "digest": None,
        }
        path = write_repro(str(tmp_path), TINY_SCENARIO, stale)
        ok, message, actual = replay(path)
        assert not ok
        assert "recorded fail" in message
        assert actual["status"] == "pass"

    def test_replay_flags_a_digest_change(self, tmp_path):
        verdict = run_scenario(TINY_SCENARIO)
        drifted = dict(verdict)
        drifted["digest"] = dict(verdict["digest"])
        drifted["digest"]["flits_injected"] += 1
        path = write_repro(str(tmp_path), TINY_SCENARIO, drifted)
        ok, message, _ = replay(path)
        assert not ok
        assert "digest changed" in message

    def test_load_repro_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "not-a-repro"}))
        with pytest.raises(ConfigurationError, match="format"):
            load_repro(str(path))

    def test_load_repro_reports_unreadable_files(self, tmp_path):
        path = tmp_path / "junk.md"
        path.write_text("# not a repro at all")
        with pytest.raises(ConfigurationError, match="not a readable"):
            load_repro(str(path))
        with pytest.raises(ConfigurationError, match="not a readable"):
            load_repro(str(tmp_path / "absent.json"))


class TestCampaign:
    def test_clean_campaign_is_deterministic_and_clears_checkpoint(
        self, tmp_path
    ):
        checkpoint_path = tmp_path / "campaign.json"
        kwargs = dict(
            space=TINY_SPACE,
            seed=3,
            count=2,
            corpus_dir=str(tmp_path / "corpus"),
            jobs=1,
            checkpoint_path=str(checkpoint_path),
        )
        first = run_campaign(**kwargs)
        assert first["scenarios"] == 2
        assert first["passed"] == 2
        assert first["failures"] == []
        # a clean campaign leaves no checkpoint and writes no repros
        assert not checkpoint_path.exists()
        assert not (tmp_path / "corpus").exists()
        assert run_campaign(**kwargs) == first

    def test_campaign_restores_verdicts_from_checkpoint(self, tmp_path):
        # seed the checkpoint with a fabricated failing verdict for
        # s000; the campaign must trust it (no recompute) and route the
        # key through the shrink-and-repro pipeline
        seed, count = 3, 2
        checkpoint_path = tmp_path / "campaign.json"
        fake = {
            "key": "s000",
            "status": "fail",
            "oracle": "conservation",
            "detail": "fabricated for the restore test",
            "digest": None,
            "wall_s": 0.0,
        }
        SweepCheckpoint(
            checkpoint_path,
            meta={
                "kind": "chaos-campaign",
                "seed": seed,
                "count": count,
                "point_timeout": None,
                "space": TINY_SPACE.to_meta(),
            },
        ).put("s000", fake)
        summary = run_campaign(
            space=TINY_SPACE,
            seed=seed,
            count=count,
            corpus_dir=str(tmp_path / "corpus"),
            jobs=1,
            checkpoint_path=str(checkpoint_path),
            shrink_budget=4,
        )
        assert summary["failed"] == 1
        failure = summary["failures"][0]
        assert failure["key"] == "s000"
        assert failure["oracle"] == "conservation"
        assert failure["detail"] == fake["detail"]
        # the repro records the re-run verdict of the shrunk scenario —
        # which passes, since the recorded failure was fabricated
        _, recorded = load_repro(failure["repro"])
        assert recorded["status"] == "pass"
        # a failing campaign keeps its checkpoint for the next resume
        assert checkpoint_path.exists()

    def test_chaos_failure_carries_oracle_and_key(self):
        error = ChaosFailure("selftest", "s000", "pipeline broke")
        assert error.oracle == "selftest"
        assert error.key == "s000"
        assert "s000" in str(error)
