"""The committed chaos-repro corpus must replay cleanly on both loops.

Every file in ``tests/repros/`` is a shrunk chaos scenario with its
recorded verdict and metrics digest (see ``repro.chaos``).  Replaying
one re-runs the scenario under the invariant checker and compares the
outcome — status, oracle, and digest — against what was recorded, so
this suite pins three things at once:

* scenarios that passed keep passing (no behavioural regression);
* their metrics digests are bit-stable (determinism regression);
* both the fused active-set loop and the legacy full-scan loop
  (``REPRO_LEGACY_LOOP=1``) reproduce the identical digest.

``corrupt-credit-audit.json`` deserves a note: it is the minimal
scenario (chaos campaign seed 7, scenario s024) that exposed the
mid-delivery ``flit_corrupt`` emission bug — the periodic credit audit
could observe a flit that was neither on the wire nor buffered.  It is
recorded as *passing* post-fix; the bug returning flips it back to an
invariant failure and the replay mismatches.
"""

import glob
import os

import pytest

from repro.chaos import load_repro, replay

CORPUS = sorted(
    glob.glob(os.path.join(os.path.dirname(__file__), "repros", "*.json"))
)
IDS = [os.path.basename(path) for path in CORPUS]


def test_corpus_is_nonempty():
    assert CORPUS, "tests/repros/ must hold at least one committed repro"


@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_corpus_entries_ride_the_invariant_checker(path):
    scenario, recorded = load_repro(path)
    assert scenario.check, f"{path}: corpus scenarios must set check=True"
    assert recorded.get("status") in ("pass", "fail")


@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_replays_on_fused_loop(path, monkeypatch):
    monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
    ok, message, _ = replay(path)
    assert ok, f"{path}: {message}"


@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_replays_on_legacy_loop(path, monkeypatch):
    # the recorded digest came from the fused loop; matching it here is
    # the fused-vs-legacy bit-identity guarantee on a faulted workload
    monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
    ok, message, _ = replay(path)
    assert ok, f"{path}: {message}"
