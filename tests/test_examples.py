"""Example scripts: importability and structure (no full runs here).

The examples are exercised for real by ``make examples``; these tests
only guard against import rot and interface drift, keeping the test
suite fast.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "scheduler_shootout",
            "video_server_admission",
            "cluster_fat_mesh",
            "pcs_vs_mediaworm",
            "gop_trace_study",
            "topology_comparison",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must define main()"
        )

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_module_docstring(self, path):
        module = _load(path)
        assert module.__doc__ and len(module.__doc__) > 80

    def test_argparse_examples_offer_help(self, capsys):
        for stem in ("cluster_fat_mesh", "topology_comparison"):
            module = _load(EXAMPLES_DIR / f"{stem}.py")
            argv = sys.argv
            sys.argv = [stem, "--help"]
            try:
                with pytest.raises(SystemExit) as excinfo:
                    module.main()
                assert excinfo.value.code == 0
            finally:
                sys.argv = argv
            assert "--load" in capsys.readouterr().out
