"""Switch faults, correlated failure domains, and datacenter failover."""

import dataclasses

import pytest

from conftest import TINY

from repro.errors import ConfigurationError, FaultConfigError, SimulationError
from repro.experiments import disaster
from repro.experiments.config import ButterflyExperiment, FatTree3Experiment
from repro.experiments.disaster import (
    CAMPAIGN_MODES,
    CAMPAIGN_TOPOLOGIES,
    _campaign_experiment,
    _point_key,
    disaster_campaign_to_text,
    run_disaster_campaign,
)
from repro.experiments.figures import get_profile
from repro.experiments.runner import (
    ExperimentResult,
    simulate_butterfly,
    simulate_fat_tree3,
)
from repro.faults import (
    DomainDownWindow,
    FaultPlan,
    RecoveryConfig,
    domain_switches,
    expand_domain,
)
from repro.metrics.collector import RunMetrics
from repro.network.health import (
    DOWN,
    PROBATION,
    SUSPECT,
    UP,
    HealthConfig,
    install_health,
)
from repro.network.network import Network
from repro.network.topology import butterfly, fat_tree3
from repro.router.config import RouterConfig, RoutingMode
from repro.sim.rng import RngStreams


def _tree_network(k=4, mode=RoutingMode.ADAPTIVE):
    topology = fat_tree3(k)
    config = RouterConfig(
        num_ports=topology.ports_per_router,
        vcs_per_pc=4,
        routing_mode=mode,
    )
    return Network(topology, config), topology


# ----------------------------------------------------------------------
# failure-domain grammar and expansion


class TestDomainGrammar:
    def test_switch_domain_covers_incident_and_host_links(self):
        topology = fat_tree3(4)
        windows = expand_domain(
            DomainDownWindow("switch:0", start=100), topology
        )
        labels = {w.link for w in windows}
        # every channel touching router 0, both directions
        for src, sp, dst, dp in topology.channels:
            touched = f"ch:{src}.{sp}->{dst}.{dp}" in labels
            assert touched == (0 in (src, dst))
        # a crashed ToR takes its hosts' attachment links with it
        assert "host0:inject" in labels and "host1:eject" in labels
        assert "host2:inject" not in labels
        assert all(w.start == 100 and w.end is None for w in windows)

    def test_expansion_is_deterministic_and_sorted(self):
        topology = fat_tree3(4)
        window = DomainDownWindow("pod:1", start=5, end=50)
        first = expand_domain(window, topology)
        second = expand_domain(window, topology)
        assert first == second
        assert [w.link for w in first] == sorted(w.link for w in first)

    def test_pod_domain_resolves_leaves_and_spines(self):
        topology = fat_tree3(4)
        # pod 1 of k=4: leaves 2,3 and spines 10,11
        assert domain_switches("pod:1", topology) == frozenset({2, 3, 10, 11})

    def test_pod_needs_a_fat_tree(self):
        with pytest.raises(FaultConfigError, match="three-level fat tree"):
            domain_switches("pod:0", butterfly(2, 3))

    def test_core_group_is_the_top_level(self):
        topology = fat_tree3(4)
        assert domain_switches("core-group", topology) == frozenset(
            {16, 17, 18, 19}
        )
        assert domain_switches("core-group:1", topology) == frozenset(
            {18, 19}
        )

    def test_links_domain_passes_patterns_through(self):
        windows = expand_domain(
            DomainDownWindow("links:ch:0.2->8.0;host3:inject", start=1),
            fat_tree3(4),
        )
        assert {w.link for w in windows} == {"ch:0.2->8.0", "host3:inject"}

    def test_unknown_domain_kinds_rejected(self):
        topology = fat_tree3(4)
        with pytest.raises(FaultConfigError, match="unknown failure domain"):
            domain_switches("rack:0", topology)
        with pytest.raises(FaultConfigError, match="unknown router"):
            domain_switches("switch:99", topology)
        with pytest.raises(FaultConfigError, match="integer"):
            domain_switches("switch:tor", topology)
        with pytest.raises(FaultConfigError, match="unknown pod"):
            domain_switches("pod:7", topology)

    def test_window_validation(self):
        with pytest.raises(FaultConfigError, match="domain name"):
            DomainDownWindow("")
        with pytest.raises(FaultConfigError, match="end must be > start"):
            DomainDownWindow("switch:0", start=10, end=10)

    def test_plan_round_trip_and_back_compat(self):
        plan = FaultPlan(
            domains=(DomainDownWindow("switch:3", start=7, end=None),)
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        # plans serialised before domains existed still decode
        legacy = dict(plan.to_dict())
        del legacy["domains"]
        assert FaultPlan.from_dict(legacy).domains == ()
        assert plan.is_zero is False
        assert FaultPlan().is_zero


# ----------------------------------------------------------------------
# the alternate-ancestor overlay, exhaustively


class TestOverlaySingleSwitchKills:
    def test_every_single_switch_kill_keeps_survivors_routable(self):
        """Property: for ANY one dead switch on fat_tree3(4), the masked
        route program still connects every pair of non-isolated hosts,
        and no unmasked candidate ever aims at the dead switch."""
        topology = fat_tree3(4)
        overlay = topology.routing.overlay
        host_router = dict(overlay.host_router)
        next_router = {
            (src, sp): dst for src, sp, dst, dp in topology.channels
        }
        for dead in range(topology.num_routers):
            masks, isolated = overlay.analyze(
                dead_switches=frozenset({dead})
            )
            expected = {
                n for n, rid in host_router.items() if rid == dead
            }
            assert set(isolated) == expected, f"dead={dead}"
            routing = topology.routing.fork()
            for rid, port in masks:
                routing.mask_port(rid, port)
            live = sorted(set(host_router) - set(isolated))
            for dst in live:
                target = host_router[dst]
                for src in live:
                    if src == dst:
                        continue
                    seen = set()
                    frontier = [host_router[src]]
                    while frontier:
                        rid = frontier.pop()
                        if rid == target or rid in seen:
                            if rid == target:
                                seen.add(rid)
                                break
                            continue
                        seen.add(rid)
                        ports, _ = routing.route_adaptive(rid, dst, None)
                        assert ports, (dead, src, dst, rid)
                        for port in ports:
                            hop = next_router[(rid, port)]
                            assert hop != dead, (dead, src, dst, rid, port)
                            frontier.append(hop)
                    assert target in seen, (dead, src, dst)


# ----------------------------------------------------------------------
# switch-level suspicion aggregation


class TestSwitchSuspicion:
    def _monitor(self):
        network, topology = _tree_network()
        monitor = install_health(network, HealthConfig(), RngStreams(seed=1))
        return network, topology, monitor

    def _set_inbound(self, monitor, rid, state, clock=1000):
        for label in monitor._switch_inbound[rid]:
            monitor.states[label].state = state
        last = monitor.states[monitor._switch_inbound[rid][-1]]
        monitor._reassess_switch(last, clock=clock)
        return last

    def test_all_inbound_down_declares_the_switch_down(self):
        network, _, monitor = self._monitor()
        self._set_inbound(monitor, 9, DOWN)
        assert monitor.switches[9].state == DOWN
        assert monitor.switches[9].downs == 1
        # the overlay repaired around it: masks applied, nobody isolated
        assert monitor._overlay_masks
        assert network.isolated_hosts == set()
        assert "switch 9 (down)" in " / ".join(monitor.suspected())

    def test_suspects_plus_one_down_suffice(self):
        _, _, monitor = self._monitor()
        labels = monitor._switch_inbound[9]
        for label in labels[:-1]:
            monitor.states[label].state = SUSPECT
        monitor.states[labels[-1]].state = DOWN
        monitor._reassess_switch(monitor.states[labels[-1]], clock=1000)
        assert monitor.switches[9].state == DOWN

    def test_all_suspect_no_down_is_not_enough(self):
        _, _, monitor = self._monitor()
        self._set_inbound(monitor, 9, SUSPECT)
        assert monitor.switches[9].state == UP

    def test_tor_kill_isolates_and_sheds_its_hosts(self):
        network, _, monitor = self._monitor()
        self._set_inbound(monitor, 0, DOWN)
        assert monitor.switches[0].state == DOWN
        assert network.isolated_hosts == {0, 1}
        events = monitor.availability_events
        assert [(e["host"], e["event"]) for e in events] == [
            (0, "isolated"),
            (1, "isolated"),
        ]

    def test_probation_lifts_the_overlay_then_up_clears(self):
        network, _, monitor = self._monitor()
        last = self._set_inbound(monitor, 0, DOWN)
        assert monitor._overlay_masks and network.isolated_hosts == {0, 1}
        # one inbound link starts probing: masks come off so the probe
        # traffic can actually test the switch
        last.state = PROBATION
        monitor._reassess_switch(last, clock=2000)
        assert monitor.switches[0].state == PROBATION
        assert monitor._overlay_masks == set()
        assert network.isolated_hosts == set()
        # the probe succeeds: the switch recovers and records its TTR
        # (down since 1000, up at 3000)
        self._set_inbound(monitor, 0, UP, clock=3000)
        switch = monitor.switches[0]
        assert switch.state == UP
        assert switch.recoveries == 1
        assert switch.ttr_total == 2000
        summary = monitor.summary()
        assert summary["switch_recoveries"] == 1
        assert summary["hosts_isolated"] == 2
        assert summary["host_downtime_cycles"] == 2 * 1000

    def test_static_mode_detects_but_never_masks(self):
        network, topology = _tree_network(mode=RoutingMode.STATIC)
        monitor = install_health(
            network, HealthConfig(), RngStreams(seed=1)
        )
        for label in monitor._switch_inbound[0]:
            monitor.states[label].state = DOWN
        monitor._reassess_switch(
            monitor.states[monitor._switch_inbound[0][-1]], clock=500
        )
        assert monitor.switches[0].state == DOWN
        assert monitor._overlay_masks == set()
        assert network.isolated_hosts == set()


# ----------------------------------------------------------------------
# end-to-end: zero-fault parity, accounting, and the k=8 acceptance bar


def _tree_disaster(mode, k=4, severity="switch:0", **overrides):
    base = FatTree3Experiment(k=k, load=0.6, mix=(80, 20), vcs_per_pc=16,
                              **TINY)
    interval = base.workload_config().frame_interval_cycles
    return dataclasses.replace(
        base,
        faults=FaultPlan(
            domains=(DomainDownWindow(severity, start=base.warmup_cycles),)
        ),
        recovery=RecoveryConfig(
            timeout=max(512, interval // 2),
            max_retries=8,
            backoff_base=max(16, interval // 256),
            backoff_cap=max(64, interval // 16),
            qos_deadline=2 * interval,
        ),
        health=HealthConfig(),
        routing_mode=mode,
        watchdog_window=4 * interval,
        **overrides,
    )


class TestZeroSwitchFaultParity:
    """Switch-level monitoring must not perturb a healthy tree run."""

    @pytest.mark.parametrize("legacy", [False, True])
    def test_fat_tree_bit_identical(self, monkeypatch, legacy):
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        else:
            monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        # adaptive mode in both twins: the monitored run has the whole
        # switch-failover machinery armed, and with zero faults it must
        # never fire
        base = FatTree3Experiment(
            k=4, load=0.6, mix=(80, 20), vcs_per_pc=16,
            routing_mode=RoutingMode.ADAPTIVE, **TINY,
        )
        plain = simulate_fat_tree3(base)
        monitored = simulate_fat_tree3(
            dataclasses.replace(base, health=HealthConfig())
        )
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            monitored.metrics
        )
        assert plain.flits_injected == monitored.flits_injected
        health = monitored.fault_stats["health"]
        assert health["switch_downs"] == 0
        assert health["hosts_isolated"] == 0

    def test_butterfly_bit_identical(self):
        base = ButterflyExperiment(
            arity=2, levels=3, load=0.6, mix=(80, 20), **TINY
        )
        plain = simulate_butterfly(base)
        monitored = simulate_butterfly(
            dataclasses.replace(base, health=HealthConfig())
        )
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(
            monitored.metrics
        )


class TestAvailabilityAccounting:
    def test_tor_kill_timeline_and_reachable_fraction(self):
        result = simulate_fat_tree3(_tree_disaster(RoutingMode.ADAPTIVE))
        stats = result.fault_stats
        health = stats["health"]
        # both hosts of the dead ToR were declared isolated and shed
        assert health["hosts_isolated"] == 2
        assert health["host_downtime_cycles"] > 0
        assert health["switch_downs"] >= 1
        first = {
            e["host"] for e in health["availability"][:2]
        }
        assert first == {0, 1}
        assert all(
            e["event"] in ("isolated", "restored")
            for e in health["availability"]
        )
        # abandons charged to isolated endpoints don't count against
        # the fabric: reachable-fraction >= raw delivered-fraction
        assert (
            stats["qos_reachable_fraction"]
            >= stats["qos_delivered_fraction"]
        )
        # metrics mirror the health summary (checkpoint surface)
        assert result.metrics.hosts_isolated == 2
        assert result.metrics.availability == health["availability"]
        assert (
            result.metrics.host_downtime_cycles
            == health["host_downtime_cycles"]
        )


class TestDisasterAcceptance:
    """The issue's bar: a permanent single-ToR kill on fat_tree3(k=8)."""

    def test_adaptive_survives_where_static_abandons(self):
        profile = get_profile("smoke")
        adaptive = simulate_fat_tree3(
            _campaign_experiment(
                profile, "fat-tree", RoutingMode.ADAPTIVE, "switch"
            )
        )
        static = simulate_fat_tree3(
            _campaign_experiment(
                profile, "fat-tree", RoutingMode.STATIC, "switch"
            )
        )
        a_stats, s_stats = adaptive.fault_stats, static.fault_stats
        # >= 99% of guaranteed traffic between non-isolated hosts
        # delivered, the dead ToR's two hosts shed gracefully (the run
        # completing at all means no DeadlockError)
        assert a_stats["qos_reachable_fraction"] >= 0.99
        assert a_stats["health"]["hosts_isolated"] == 2
        assert a_stats["health"]["streams_shed"] > 0
        # static demonstrably abandons: no shedding, big QoS hole
        assert s_stats["qos_abandoned"] > 0
        assert s_stats["qos_delivered_fraction"] < 0.99
        assert s_stats["health"]["hosts_isolated"] == 0
        assert (
            a_stats["qos_reachable_fraction"]
            > s_stats["qos_delivered_fraction"]
        )


# ----------------------------------------------------------------------
# the campaign plumbing (simulations stubbed out)


def _fake_result(experiment):
    adaptive = experiment.routing_mode == RoutingMode.ADAPTIVE
    severity = disaster._experiment_severity(experiment)
    fraction = 1.0 if adaptive or severity == "none" else 0.9
    metrics = RunMetrics(33.0, 0.5, 100, 99, 10.0, 10.0, 1.0, 50)
    return ExperimentResult(
        experiment=experiment,
        metrics=metrics,
        workload=None,
        cycles_run=1000,
        flits_injected=10,
        flits_ejected=10,
        wall_seconds=0.0,
        fault_stats={
            "qos_delivered_fraction": fraction,
            "qos_reachable_fraction": 1.0 if adaptive else fraction,
            "qos_abandoned": 0 if adaptive else 5,
            "health": {
                "switch_downs": 0 if severity == "none" else 1,
                "hosts_isolated": 2 if severity == "switch" else 0,
                "host_downtime_cycles": 0,
                "streams_shed": 0,
                "mean_switch_time_to_recover_cycles": 0.0,
            },
        },
    )


class TestRunDisasterCampaign:
    def test_series_shape_and_butterfly_skips_pod(self, monkeypatch):
        monkeypatch.setattr(disaster, "simulate_fat_tree3", _fake_result)
        monkeypatch.setattr(disaster, "simulate_butterfly", _fake_result)
        fig = run_disaster_campaign(
            "quick", severities=("none", "switch", "pod")
        )
        assert fig.figure_id == "disaster"
        assert set(fig.series) == {
            f"{kind}/{mode}"
            for kind in CAMPAIGN_TOPOLOGIES
            for mode in CAMPAIGN_MODES
        }
        assert [
            p.extra["severity"] for p in fig.series["fat-tree/adaptive"]
        ] == ["none", "switch", "pod"]
        # the butterfly has no pods; its series simply omits the rung
        assert [
            p.extra["severity"] for p in fig.series["butterfly/static"]
        ] == ["none", "switch"]

    def test_unknown_severity_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown severity"):
            run_disaster_campaign("quick", severities=("tsunami",))

    def test_failed_point_recorded_not_fatal(self, monkeypatch):
        def flaky(experiment):
            if experiment.routing_mode == RoutingMode.STATIC:
                raise SimulationError("wedged")
            return _fake_result(experiment)

        monkeypatch.setattr(disaster, "simulate_fat_tree3", flaky)
        monkeypatch.setattr(disaster, "simulate_butterfly", flaky)
        fig = run_disaster_campaign("quick", severities=("switch",))
        static = fig.series["fat-tree/static"][0]
        assert "failed" in static.extra
        assert static.extra["severity"] == "switch"
        assert "FAILED" in disaster_campaign_to_text(fig)

    def test_text_rendering(self, monkeypatch):
        monkeypatch.setattr(disaster, "simulate_fat_tree3", _fake_result)
        monkeypatch.setattr(disaster, "simulate_butterfly", _fake_result)
        fig = run_disaster_campaign("quick", severities=("none", "switch"))
        text = disaster_campaign_to_text(fig)
        assert "reach frac" in text and "isolated" in text
        assert "fat-tree/adaptive" in text and "butterfly/static" in text

    def test_point_keys_are_fingerprinted(self):
        profile = get_profile("quick")
        experiment = _campaign_experiment(
            profile, "fat-tree", RoutingMode.ADAPTIVE, "switch"
        )
        key = _point_key(
            "fat-tree", RoutingMode.ADAPTIVE, "switch", experiment
        )
        assert key.startswith("fat-tree/adaptive@switch|")
        assert "mode=adaptive" in key
        changed = dataclasses.replace(
            experiment, health=HealthConfig(probe_interval=2048)
        )
        assert (
            _point_key("fat-tree", RoutingMode.ADAPTIVE, "switch", changed)
            != key
        )
