"""Host interfaces: injection multiplexing, credits, ejection."""

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.errors import FlowControlError
from repro.network.interface import HostSink
from repro.router.flit import Message, TrafficClass

from conftest import deliver_all, make_message, make_network


class TestInjection:
    def test_inject_sets_time_and_counters(self):
        net = make_network()
        ni = net.interfaces[0]
        net.run(4)
        msg = make_message(size=5)
        net.inject_now(msg)
        assert msg.inject_time == net.clock
        assert ni.flits_injected == 5
        assert ni.messages_injected == 1

    def test_invalid_source_vc_rejected(self):
        net = make_network(vcs=2)
        with pytest.raises(FlowControlError):
            net.inject_now(make_message(src_vc=5))

    def test_one_flit_per_cycle_on_host_link(self):
        net = make_network()
        # Two 10-flit messages on separate VCs: the host link serialises
        # 20 flits, so the last tail cannot beat 20 cycles + pipeline.
        a = make_message(size=10, src_vc=0, dst_vc=0)
        b = make_message(size=10, src_vc=1, dst_vc=1)
        net.inject_now(a)
        net.inject_now(b)
        deliver_all(net)
        assert max(a.deliver_time, b.deliver_time) >= 20

    def test_backlog_accounting(self):
        net = make_network()
        ni = net.interfaces[0]
        net.inject_now(make_message(size=6))
        assert ni.backlog_flits == 6
        assert ni.has_backlog
        deliver_all(net)
        assert ni.backlog_flits == 0
        assert not ni.has_backlog

    def test_messages_on_one_vc_fifo(self):
        net = make_network()
        first = make_message(size=3, src_vc=1, dst_vc=0)
        second = make_message(size=3, src_vc=1, dst_vc=1)
        net.inject_now(first)
        net.inject_now(second)
        deliver_all(net)
        assert first.deliver_time < second.deliver_time


class TestVirtualClockPacing:
    def test_high_rate_stream_wins_the_link(self):
        # Same-cycle injection: the smaller-Vtick (higher-bandwidth)
        # message earns earlier stamps and finishes first.
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        slow = make_message(size=8, vtick=500.0, src_vc=0, dst_vc=0)
        fast = make_message(size=8, vtick=5.0, src_vc=1, dst_vc=1)
        net.inject_now(slow)
        net.inject_now(fast)
        deliver_all(net)
        assert fast.deliver_time < slow.deliver_time

    def test_fifo_ignores_vtick(self):
        net = make_network(policy=SchedulingPolicy.FIFO)
        slow = make_message(size=8, vtick=500.0, src_vc=0, dst_vc=0)
        fast = make_message(size=8, vtick=5.0, src_vc=1, dst_vc=1)
        net.inject_now(slow)
        net.inject_now(fast)
        deliver_all(net)
        # FIFO stamps both with the arrival time; the tie breaks by VC
        # index, so the slow message (VC 0) finishes first.
        assert slow.deliver_time < fast.deliver_time

    def test_best_effort_yields_to_real_time(self):
        net = make_network(policy=SchedulingPolicy.VIRTUAL_CLOCK)
        be = make_message(
            size=8,
            vtick=1e12,
            traffic_class=TrafficClass.BEST_EFFORT,
            src_vc=0,
            dst_vc=0,
        )
        rt = make_message(size=8, vtick=10.0, src_vc=1, dst_vc=1)
        net.inject_now(be)
        net.inject_now(rt)
        deliver_all(net)
        assert rt.deliver_time < be.deliver_time


class TestHostSink:
    def test_counts_flits_and_messages(self):
        sink = HostSink(node_id=1)
        msg = make_message(size=3)
        for i in range(3):
            sink.eject(10 + i, msg, i)
        assert sink.flits_ejected == 3
        assert sink.messages_ejected == 1
        assert msg.deliver_time == 12

    def test_wrong_destination_raises(self):
        sink = HostSink(node_id=2)
        msg = make_message(dst=1, size=1)
        with pytest.raises(FlowControlError):
            sink.eject(0, msg, 0)

    def test_callbacks_fire(self):
        messages, flits = [], []
        sink = HostSink(
            node_id=1,
            on_message=lambda m, t: messages.append((m.msg_id, t)),
            on_flit=lambda n: flits.append(n),
        )
        msg = make_message(size=2)
        sink.eject(5, msg, 0)
        sink.eject(6, msg, 1)
        assert messages == [(msg.msg_id, 6)]
        assert flits == [1, 1]
