"""The scale campaign and its CLI surfaces (``topo``, ``scale``).

Includes the acceptance run for the datacenter scale-up: a 1024-host
3-level fat tree completes under an armed progress watchdog with
bit-identical digests across the active-set loop, an active repeat,
and the legacy full-scan loop — while compiling its route program at
most once.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main as cli_main
from repro.experiments.scale import (
    SCALE_POINTS,
    SMOKE_POINTS,
    run_scale_campaign,
    run_scale_point,
    scale_campaign_to_text,
)
from repro.experiments.topo import build_topology, describe_topology


class TestScalePoints:
    def test_smoke_points_are_known(self):
        for name in SMOKE_POINTS:
            assert name in SCALE_POINTS

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scale point"):
            run_scale_point("ft3-9999")

    def test_small_point_identical_and_compile_once(self):
        record = run_scale_point("ft3-16")
        assert record["identical"]
        assert record["compile_once"]
        assert record["compiles_repeat_run"] == 0
        assert record["watchdog_window"] > 0
        assert record["flits_injected"] > 0
        assert record["topology"]["hosts"] == 16

    def test_campaign_summary_and_text(self):
        summary = run_scale_campaign(points=("bfly-64",))
        assert summary["ok"]
        text = scale_campaign_to_text(summary)
        assert "bfly-64" in text
        assert "overall: OK" in text


class TestThousandHostAcceptance:
    def test_1024_hosts_bit_identical_on_both_loops(self):
        """ft3-1024: 320 switches, 1024 hosts, watchdog armed.

        The slowest test in the suite by design — it is the scale
        claim itself.  Three full runs (active, repeat, legacy) must
        produce one digest, and the repeat must hit the topology
        cache (zero route-program compiles).
        """
        record = run_scale_point("ft3-1024")
        assert record["topology"]["hosts"] == 1024
        assert record["topology"]["routers"] == 320
        assert record["identical"], "loop digests diverged at 1024 hosts"
        assert record["compile_once"]
        assert record["flits_ejected"] > 0


class TestTopoCommand:
    def test_build_and_describe(self, capsys):
        topology = build_topology("fat_tree3", k=4)
        text = describe_topology(topology)
        assert "switches          20" in text
        assert "hosts             16" in text
        assert "table_ints" in text

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            build_topology("torus")

    def test_wrong_flag_for_kind(self):
        with pytest.raises(ConfigurationError, match="does not take"):
            build_topology("single", k=4)

    def test_cli_topo(self, capsys):
        assert cli_main(["topo", "butterfly", "--arity", "2"]) == 0
        out = capsys.readouterr().out
        assert "butterfly" in out
        assert "route program" in out

    def test_cli_scale_smoke_point(self, capsys, tmp_path):
        out_json = tmp_path / "scale.json"
        code = cli_main(
            ["scale", "--points", "ft3-16", "--json", str(out_json)]
        )
        assert code == 0
        summary = json.loads(out_json.read_text())
        assert summary["ok"]
        assert summary["points"][0]["name"] == "ft3-16"

    def test_cli_list_mentions_new_commands(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "topo" in out
        assert "scale" in out
