"""Paper-claim validation checks."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import FigureData, Point
from repro.experiments.validation import (
    CHECKERS,
    ClaimResult,
    check_claims,
    check_fig3,
    check_fig8,
    claims_to_text,
)
from repro.metrics.collector import RunMetrics


def _metrics(d=33.0, sigma=0.1, be=10.0):
    return RunMetrics(
        mean_delivery_interval_ms=d,
        std_delivery_interval_ms=sigma,
        frames_delivered=100,
        interval_count=90,
        be_latency_us=be,
        be_latency_us_paper_equivalent=be * 20,
        be_latency_std_us=1.0,
        be_message_count=100,
    )


def _series(values):
    """[(x, d, sigma)] -> [Point]"""
    return [Point(x, _metrics(d, sigma)) for x, d, sigma in values]


def _fig3(vclock, fifo):
    return FigureData(
        "fig3", "t", "load",
        {"virtual_clock": _series(vclock), "fifo": _series(fifo)},
    )


class TestRegistry:
    def test_every_figure_has_claims(self):
        assert set(CHECKERS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        }

    def test_unknown_figure_rejected(self):
        fig = FigureData("figX", "t", "x", {})
        with pytest.raises(ConfigurationError):
            check_claims(fig)

    def test_dispatch_by_figure_id(self):
        fig = _fig3(
            [(0.6, 33.0, 0.1), (0.96, 33.0, 0.4)],
            [(0.6, 33.0, 0.1), (0.96, 34.0, 3.0)],
        )
        results = check_claims(fig)
        assert results and all(isinstance(r, ClaimResult) for r in results)


class TestFig3Claims:
    def test_paper_shape_passes(self):
        results = check_fig3(
            _fig3(
                [(0.6, 33.0, 0.1), (0.9, 33.0, 0.3), (0.96, 33.0, 0.4)],
                [(0.6, 33.0, 0.1), (0.9, 33.5, 2.0), (0.96, 34.5, 6.0)],
            )
        )
        assert all(r.passed for r in results)

    def test_jittery_vclock_fails(self):
        results = check_fig3(
            _fig3(
                [(0.6, 33.0, 0.1), (0.9, 35.0, 5.0)],
                [(0.6, 33.0, 0.1), (0.9, 35.0, 5.0)],
            )
        )
        assert any(not r.passed for r in results)

    def test_fifo_better_than_vclock_fails(self):
        results = check_fig3(
            _fig3(
                [(0.6, 33.0, 2.0), (0.9, 33.0, 4.0), (0.96, 33, 5.0)],
                [(0.6, 33.0, 0.1), (0.9, 33.0, 0.1), (0.96, 33, 0.1)],
            )
        )
        assert any(not r.passed for r in results)


class TestFig8Claims:
    def _fig8(self, top_dropped, mid_dropped):
        def pcs_point(x, dropped):
            return Point(
                x,
                _metrics(33.0, 0.2),
                extra={"attempts": 100, "established": 100 - dropped,
                       "dropped": dropped},
            )

        return FigureData(
            "fig8", "t", "load",
            {
                "wormhole": _series(
                    [(0.5, 33.0, 0.2), (0.7, 33.0, 0.4), (0.9, 33.4, 2.0)]
                ),
                "pcs": [
                    pcs_point(0.5, 5),
                    pcs_point(0.7, mid_dropped),
                    pcs_point(0.9, top_dropped),
                ],
            },
        )

    def test_paper_shape_passes(self):
        results = check_fig8(self._fig8(top_dropped=70, mid_dropped=55))
        assert all(r.passed for r in results), claims_to_text(results)

    def test_no_drops_fails(self):
        results = check_fig8(self._fig8(top_dropped=2, mid_dropped=1))
        assert any(not r.passed for r in results)


class TestClaimsToText:
    def test_renders_pass_fail(self):
        text = claims_to_text(
            [
                ClaimResult("good thing", True, "detail here"),
                ClaimResult("bad thing", False),
            ]
        )
        assert "[PASS] good thing" in text
        assert "(detail here)" in text
        assert "[FAIL] bad thing" in text


class TestFig5Claims:
    def _fig5(self, top_points):
        from repro.experiments.validation import check_fig5

        series = {}
        for load in (0.6, 0.7, 0.8):
            series[f"load={load:g}"] = [
                Point("20:80", _metrics(33.0, 0.1)),
                Point("100:0", _metrics(33.0, 0.2)),
            ]
        series["load=0.96"] = top_points
        fig = FigureData("fig5", "t", "mix", series)
        return check_fig5(fig)

    def test_rt_dominant_worst_passes(self):
        results = self._fig5(
            [Point("20:80", _metrics(33.0, 0.5)),
             Point("100:0", _metrics(34.0, 4.0))]
        )
        assert all(r.passed for r in results)

    def test_be_dominant_worst_fails(self):
        results = self._fig5(
            [Point("20:80", _metrics(34.0, 6.0)),
             Point("100:0", _metrics(33.0, 0.5))]
        )
        assert any(not r.passed for r in results)


class TestFig9Claims:
    def _fig9(self, latencies, worst_sigma_mix="80:20", worst_sigma=0.4):
        from repro.experiments.validation import check_fig9

        series = {}
        for load in (0.7, 0.8, 0.9):
            points = []
            for mix, lat in zip(("40:60", "60:40", "80:20"), latencies):
                sigma = worst_sigma if mix == worst_sigma_mix else 0.1
                points.append(Point(mix, _metrics(33.0, sigma, be=lat)))
            series[f"load={load:g}"] = points
        return check_fig9(FigureData("fig9", "t", "mix", series))

    def test_paper_shape_passes(self):
        results = self._fig9((10.0, 20.0, 40.0))
        assert all(r.passed for r in results), claims_to_text(results)

    def test_decreasing_latency_fails(self):
        results = self._fig9((40.0, 20.0, 10.0))
        assert any(not r.passed for r in results)

    def test_degradation_in_moderate_mix_fails(self):
        results = self._fig9(
            (10.0, 20.0, 40.0), worst_sigma_mix="40:60", worst_sigma=5.0
        )
        assert any(not r.passed for r in results)

    def test_small_sigma_in_moderate_mix_is_fine(self):
        results = self._fig9(
            (10.0, 20.0, 40.0), worst_sigma_mix="40:60", worst_sigma=0.9
        )
        assert all(r.passed for r in results), claims_to_text(results)


class TestFig6Claims:
    def _fig6(self, limits):
        from repro.experiments.validation import check_fig6

        def series(limit):
            return [
                Point(load, _metrics(33.0, 0.2 if load <= limit else 5.0))
                for load in (0.5, 0.7, 0.8, 0.9)
            ]

        fig = FigureData(
            "fig6",
            "t",
            "load",
            {
                "16 VCs, multiplexed": series(limits[0]),
                "8 VCs, multiplexed": series(limits[1]),
                "4 VCs, multiplexed": series(limits[2]),
                "4 VCs, full crossbar": series(limits[3]),
            },
        )
        return check_fig6(fig)

    def test_paper_ordering_passes(self):
        results = self._fig6((0.9, 0.8, 0.7, 0.8))
        assert all(r.passed for r in results), claims_to_text(results)

    def test_inverted_vc_ordering_fails(self):
        results = self._fig6((0.7, 0.8, 0.9, 0.9))
        assert any(not r.passed for r in results)
