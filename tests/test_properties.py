"""Property-based tests: network invariants under randomised workloads."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schedulers import SchedulingPolicy
from repro.router.config import CrossbarKind
from repro.router.flit import Message, TrafficClass

from conftest import make_network


message_strategy = st.builds(
    dict,
    src=st.integers(min_value=0, max_value=3),
    dst_offset=st.integers(min_value=1, max_value=3),
    size=st.integers(min_value=1, max_value=12),
    src_vc=st.integers(min_value=0, max_value=3),
    dst_vc=st.integers(min_value=0, max_value=3),
    vtick=st.floats(min_value=1.0, max_value=1e4),
    delay=st.integers(min_value=0, max_value=50),
)


def _build_and_run(specs, policy, crossbar, depth=3):
    net = make_network(
        ports=4, vcs=4, depth=depth, policy=policy, crossbar=crossbar
    )
    messages = []
    for spec in specs:
        msg = Message(
            src_node=spec["src"],
            dst_node=(spec["src"] + spec["dst_offset"]) % 4,
            size=spec["size"],
            vtick=spec["vtick"],
            traffic_class=TrafficClass.VBR,
            src_vc=spec["src_vc"],
            dst_vc=spec["dst_vc"],
        )
        messages.append(msg)
        net.schedule_message(spec["delay"], msg)
    net.run_until_drained(max_extra=200_000, drain_events=True)
    return net, messages


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNetworkProperties:
    @common_settings
    @given(specs=st.lists(message_strategy, min_size=1, max_size=25))
    def test_no_flit_lost_or_duplicated(self, specs):
        net, messages = _build_and_run(
            specs, SchedulingPolicy.VIRTUAL_CLOCK, CrossbarKind.MULTIPLEXED
        )
        assert net.flits_ejected == sum(m.size for m in messages)
        net.check_invariants()

    @common_settings
    @given(specs=st.lists(message_strategy, min_size=1, max_size=25))
    def test_every_message_delivered_exactly_once(self, specs):
        delivered = []
        net = make_network(
            ports=4, vcs=4, on_message=lambda m, t: delivered.append(m.msg_id)
        )
        messages = []
        for spec in specs:
            msg = Message(
                src_node=spec["src"],
                dst_node=(spec["src"] + spec["dst_offset"]) % 4,
                size=spec["size"],
                vtick=spec["vtick"],
                traffic_class=TrafficClass.VBR,
                src_vc=spec["src_vc"],
                dst_vc=spec["dst_vc"],
            )
            messages.append(msg)
            net.schedule_message(spec["delay"], msg)
        net.run_until_drained(max_extra=200_000, drain_events=True)
        assert sorted(delivered) == sorted(m.msg_id for m in messages)

    @common_settings
    @given(specs=st.lists(message_strategy, min_size=1, max_size=20))
    def test_full_crossbar_preserves_conservation(self, specs):
        net, messages = _build_and_run(
            specs, SchedulingPolicy.VIRTUAL_CLOCK, CrossbarKind.FULL
        )
        assert net.flits_ejected == sum(m.size for m in messages)

    @common_settings
    @given(
        specs=st.lists(message_strategy, min_size=1, max_size=20),
        policy=st.sampled_from(
            [
                SchedulingPolicy.FIFO,
                SchedulingPolicy.VIRTUAL_CLOCK,
                SchedulingPolicy.ROUND_ROBIN,
            ]
        ),
    )
    def test_all_policies_drain(self, specs, policy):
        net, messages = _build_and_run(
            specs, policy, CrossbarKind.MULTIPLEXED
        )
        assert net.flits_in_flight == 0

    @common_settings
    @given(
        specs=st.lists(message_strategy, min_size=1, max_size=15),
        depth=st.integers(min_value=1, max_value=8),
    )
    def test_any_buffer_depth_drains(self, specs, depth):
        net, messages = _build_and_run(
            specs,
            SchedulingPolicy.VIRTUAL_CLOCK,
            CrossbarKind.MULTIPLEXED,
            depth=depth,
        )
        assert net.flits_ejected == sum(m.size for m in messages)

    @common_settings
    @given(specs=st.lists(message_strategy, min_size=2, max_size=15))
    def test_same_vc_messages_deliver_in_injection_order(self, specs):
        # Fix all messages to one (src, vc) pair: wormhole guarantees
        # they arrive in injection order.
        order = []
        net = make_network(
            ports=4, vcs=4, on_message=lambda m, t: order.append(m.msg_id)
        )
        injected = []
        for i, spec in enumerate(specs):
            msg = Message(
                src_node=0,
                dst_node=1,
                size=spec["size"],
                vtick=spec["vtick"],
                traffic_class=TrafficClass.VBR,
                src_vc=0,
                dst_vc=spec["dst_vc"],
            )
            injected.append(msg)
            net.schedule_message(i, msg)  # strictly increasing times
        net.run_until_drained(max_extra=200_000, drain_events=True)
        assert order == [m.msg_id for m in injected]
