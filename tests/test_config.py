"""Router configuration validation and VC partitioning."""

import pytest

from repro.core.mediaworm import mediaworm_router_config, vanilla_router_config
from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.router.config import CrossbarKind, RouterConfig


class TestRouterConfig:
    def test_table1_defaults(self):
        config = RouterConfig()
        assert config.num_ports == 8
        assert config.vcs_per_pc == 16
        assert config.crossbar == CrossbarKind.MULTIPLEXED
        assert config.qos_policy == SchedulingPolicy.VIRTUAL_CLOCK

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_ports=0),
            dict(vcs_per_pc=0),
            dict(flit_buffer_depth=0),
            dict(output_buffer_depth=0),
            dict(crossbar="mesh"),
            dict(qos_policy="edf"),
            dict(rt_vc_count=17),
            dict(rt_vc_count=-1),
            dict(routing_delay=-1),
            dict(arbitration_delay=-1),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RouterConfig(**kwargs)

    def test_header_pipeline_delay(self):
        config = RouterConfig(routing_delay=1, arbitration_delay=1)
        assert config.header_pipeline_delay == 2

    def test_partition_none_gives_all_vcs_to_both(self):
        config = RouterConfig(vcs_per_pc=8, rt_vc_count=None)
        assert list(config.vc_range_for_class(True)) == list(range(8))
        assert list(config.vc_range_for_class(False)) == list(range(8))

    def test_partition_splits_ranges(self):
        config = RouterConfig(vcs_per_pc=16, rt_vc_count=13)
        assert list(config.vc_range_for_class(True)) == list(range(13))
        assert list(config.vc_range_for_class(False)) == list(range(13, 16))

    def test_partition_all_real_time(self):
        config = RouterConfig(vcs_per_pc=16, rt_vc_count=16)
        assert list(config.vc_range_for_class(True)) == list(range(16))
        assert list(config.vc_range_for_class(False)) == []

    def test_partition_all_best_effort(self):
        config = RouterConfig(vcs_per_pc=16, rt_vc_count=0)
        assert list(config.vc_range_for_class(True)) == []
        assert list(config.vc_range_for_class(False)) == list(range(16))


class TestPresets:
    def test_mediaworm_uses_virtual_clock(self):
        config = mediaworm_router_config()
        assert config.qos_policy == SchedulingPolicy.VIRTUAL_CLOCK

    def test_vanilla_defaults_to_fifo(self):
        config = vanilla_router_config()
        assert config.qos_policy == SchedulingPolicy.FIFO

    def test_vanilla_round_robin_variant(self):
        config = vanilla_router_config(scheduler=SchedulingPolicy.ROUND_ROBIN)
        assert config.qos_policy == SchedulingPolicy.ROUND_ROBIN

    def test_presets_share_pipeline_shape(self):
        mw = mediaworm_router_config(vcs_per_pc=8)
        va = vanilla_router_config(vcs_per_pc=8)
        assert mw.num_ports == va.num_ports
        assert mw.vcs_per_pc == va.vcs_per_pc
        assert mw.crossbar == va.crossbar

    def test_full_crossbar_preset(self):
        config = mediaworm_router_config(crossbar=CrossbarKind.FULL)
        assert config.crossbar == CrossbarKind.FULL

    def test_overrides_pass_through(self):
        config = mediaworm_router_config(output_buffer_depth=6)
        assert config.output_buffer_depth == 6
