"""Property tests of Virtual Clock fairness over the grant-event stream.

The scheduler's bandwidth guarantee, checked where it is actually
enforced: the host interface's injection multiplexer serves the
minimum virtual-clock stamp, so two continuously backlogged flows on
one NI must share the host link in proportion to their reserved rates
(``1/vtick``).  The observability layer makes the guarantee testable —
``flit_inject`` events *are* the grant sequence, so the properties
below are asserted on the real arbitration path, not on a scheduler
model.

Three families of properties, with vticks drawn by hypothesis:

* **proportional share** — over the doubly-backlogged region, each
  flow's grant count matches its reserved fraction, in aggregate and
  over every sliding window (no flow ever exceeds its share for long
  while a backlogged competitor waits);
* **no starvation** — the slower flow keeps receiving grants at its
  reserved spacing rather than being deferred to the end;
* **class separation** — a backlogged best-effort flow neither delays
  a real-time flow's completion nor starves once the real-time flow
  drains (work conservation).

A FIFO contrast pins that the sharing really comes from Virtual Clock:
under FIFO the same experiment's grant sequence is invariant to the
vticks.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_network, make_message

from repro.core.schedulers import SchedulingPolicy
from repro.core.virtual_clock import BEST_EFFORT_VTICK
from repro.obs import RingBufferSink
from repro.router.flit import TrafficClass

#: flits per flow; one message each, so the Virtual Clock state stays
#: open for the whole run and stamps pace the flow end to end
SIZE = 128

vticks = st.integers(min_value=1, max_value=16)


def _grants(
    vtick_a,
    vtick_b,
    size=SIZE,
    policy=SchedulingPolicy.VIRTUAL_CLOCK,
    class_b=TrafficClass.VBR,
    with_b=True,
):
    """Grant sequence ``[(cycle, vc), ...]`` of one NI serving two flows.

    Both flows are queued at cycle 0 on their own source VC of node 0,
    heading to distinct destinations/VCs so they contend only at the
    injection multiplexer under test.
    """
    sink = RingBufferSink(events=("flit_inject",))
    network = make_network(ports=4, vcs=4, policy=policy, trace_sink=sink)
    network.inject_now(
        make_message(
            src=0, dst=1, size=size, vtick=vtick_a, src_vc=0, dst_vc=0
        )
    )
    if with_b:
        network.inject_now(
            make_message(
                src=0,
                dst=2,
                size=size,
                vtick=vtick_b,
                src_vc=1,
                dst_vc=1,
                traffic_class=class_b,
            )
        )
    network.run_until_drained(max_extra=2_000_000)
    return [
        (cycle, fields["vc"])
        for kind, cycle, fields in sink.records
        if fields["node"] == 0
    ]


def _backlogged_region(grants):
    """Grant VCs up to the cycle where the first flow ran dry."""
    last = {vc: max(c for c, v in grants if v == vc) for vc in (0, 1)}
    cutoff = min(last.values())
    return [vc for cycle, vc in grants if cycle <= cutoff]


class TestProportionalShare:
    @given(vtick_a=vticks, vtick_b=vticks)
    @settings(max_examples=50, deadline=None)
    def test_grants_split_by_reserved_rates(self, vtick_a, vtick_b):
        """Aggregate share tracks 1/vtick while both flows backlog."""
        region = _backlogged_region(_grants(vtick_a, vtick_b))
        share_a = region.count(0) / len(region)
        expected = vtick_b / (vtick_a + vtick_b)
        assert abs(share_a - expected) < 0.03

    @given(vtick_a=vticks, vtick_b=vticks)
    @settings(max_examples=50, deadline=None)
    def test_no_window_exceeds_the_reserved_share(self, vtick_a, vtick_b):
        """Every 64-grant window splits proportionally (±4 flits).

        This is the starvation-free form of the guarantee: a flow can
        never bank its reservation and then burst past it while the
        competitor is backlogged — Virtual Clock interleaves grants at
        stamp granularity, so the split holds over every window, not
        just on average.
        """
        region = _backlogged_region(_grants(vtick_a, vtick_b))
        window = 64
        expected = window * vtick_b / (vtick_a + vtick_b)
        for start in range(len(region) - window + 1):
            granted_a = region[start : start + window].count(0)
            assert abs(granted_a - expected) <= 4

    @given(vtick_a=vticks, vtick_b=vticks)
    @settings(max_examples=50, deadline=None)
    def test_slow_flow_is_served_at_its_reserved_spacing(
        self, vtick_a, vtick_b
    ):
        """Consecutive grants to either flow are at most ~vtick ratio
        apart in grant slots — the competitor is paced, not deferred."""
        region = _backlogged_region(_grants(vtick_a, vtick_b))
        for flow, own, other in ((0, vtick_a, vtick_b), (1, vtick_b, vtick_a)):
            slots = [i for i, vc in enumerate(region) if vc == flow]
            if len(slots) < 2:
                continue
            # between consecutive grants the other flow takes at most
            # ceil(own/other) slots; the slack covers stamp ties
            # (broken toward the lower VC) and up to flit_buffer_depth
            # early grants won during the competitor's credit stalls,
            # which push the next stamp-ordered grant further out
            bound = math.ceil(own / other) + 5
            assert max(b - a for a, b in zip(slots, slots[1:])) <= bound


class TestClassSeparation:
    @given(vtick_rt=vticks)
    @settings(max_examples=20, deadline=None)
    def test_best_effort_backlog_cannot_delay_real_time(self, vtick_rt):
        """An infinite-vtick competitor never postpones RT completion."""
        solo = _grants(vtick_rt, 0, with_b=False)
        contended = _grants(
            vtick_rt, BEST_EFFORT_VTICK, class_b=TrafficClass.BEST_EFFORT
        )
        rt_done_solo = max(c for c, vc in solo if vc == 0)
        rt_done = max(c for c, vc in contended if vc == 0)
        assert rt_done == rt_done_solo

    @given(vtick_rt=vticks)
    @settings(max_examples=20, deadline=None)
    def test_best_effort_is_not_starved_once_real_time_drains(
        self, vtick_rt
    ):
        """Work conservation: the BE flow completes, and the mux only
        serves it ahead of RT during RT credit stalls (a handful of
        pipeline-fill grants at most)."""
        grants = _grants(
            vtick_rt, BEST_EFFORT_VTICK, class_b=TrafficClass.BEST_EFFORT
        )
        be = [c for c, vc in grants if vc == 1]
        assert len(be) == SIZE
        rt_done = max(c for c, vc in grants if vc == 0)
        early_be = sum(1 for c in be if c < rt_done)
        assert early_be <= 4


class TestFifoContrast:
    @given(
        pair_x=st.tuples(vticks, vticks),
        pair_y=st.tuples(vticks, vticks),
    )
    @settings(max_examples=20, deadline=None)
    def test_fifo_grant_sequence_ignores_vticks(self, pair_x, pair_y):
        """Under FIFO the identical experiment yields the identical
        grant sequence whatever the reservations say — the bandwidth
        differentiation above is Virtual Clock's doing."""
        first = _grants(*pair_x, policy=SchedulingPolicy.FIFO)
        second = _grants(*pair_y, policy=SchedulingPolicy.FIFO)
        assert first == second
