"""Analysis helpers: jitter thresholds and series comparison."""

import math
from dataclasses import dataclass

import pytest

from repro.analysis import (
    crossover_x,
    dominates,
    is_jitter_free_point,
    max_jitter_free_load,
    monotonic_tail,
)


@dataclass
class P:
    x: float
    d: float
    sigma_d: float


class TestJitterFree:
    def test_perfect_point(self):
        assert is_jitter_free_point(33.0, 0.0)

    def test_within_tolerance(self):
        assert is_jitter_free_point(33.4, 0.8)

    def test_mean_drift_fails(self):
        assert not is_jitter_free_point(35.0, 0.1)

    def test_sigma_fails(self):
        assert not is_jitter_free_point(33.0, 3.0)

    def test_nan_fails(self):
        assert not is_jitter_free_point(float("nan"), 0.0)
        assert not is_jitter_free_point(33.0, float("nan"))

    def test_custom_nominal(self):
        assert is_jitter_free_point(100.0, 0.1, nominal_ms=100.0)


class TestMaxJitterFreeLoad:
    def test_finds_threshold(self):
        points = [
            P(0.6, 33.0, 0.1),
            P(0.7, 33.0, 0.3),
            P(0.8, 33.1, 0.6),
            P(0.9, 34.5, 4.0),
        ]
        assert max_jitter_free_load(points) == 0.8

    def test_none_when_always_jittery(self):
        assert max_jitter_free_load([P(0.5, 40.0, 9.0)]) is None

    def test_all_jitter_free(self):
        points = [P(0.5, 33.0, 0.0), P(0.9, 33.0, 0.2)]
        assert max_jitter_free_load(points) == 0.9

    def test_stops_at_first_jittery_point(self):
        # a lucky re-entrant point above the knee must not count
        points = [P(0.6, 33.0, 0.1), P(0.7, 35.0, 5.0), P(0.8, 33.0, 0.1)]
        assert max_jitter_free_load(points) == 0.6

    def test_unsorted_input(self):
        points = [P(0.8, 33.0, 0.4), P(0.6, 33.0, 0.1)]
        assert max_jitter_free_load(points) == 0.8


class TestDominates:
    def test_strictly_better(self):
        a = [P(0.6, 33, 0.1), P(0.9, 33, 0.5)]
        b = [P(0.6, 33, 0.4), P(0.9, 34, 5.0)]
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_with_slack(self):
        a = [P(0.5, 33, 0.5)]
        b = [P(0.5, 33, 0.4)]
        assert not dominates(a, b)
        assert dominates(a, b, slack=0.2)

    def test_no_shared_points_is_false(self):
        assert not dominates([P(0.5, 33, 0.1)], [P(0.6, 33, 0.2)])

    def test_nan_points_skipped(self):
        a = [P(0.5, 33, float("nan")), P(0.6, 33, 0.1)]
        b = [P(0.5, 33, 0.0), P(0.6, 33, 0.2)]
        assert dominates(a, b)


class TestCrossover:
    def test_finds_first_exceedance(self):
        a = [P(0.6, 33, 0.1), P(0.8, 33, 0.5), P(0.9, 34, 6.0)]
        b = [P(0.6, 33, 0.2), P(0.8, 33, 0.6), P(0.9, 33, 0.7)]
        assert crossover_x(a, b) == 0.9

    def test_none_without_crossover(self):
        a = [P(0.6, 33, 0.1)]
        b = [P(0.6, 33, 0.2)]
        assert crossover_x(a, b) is None


class TestMonotonicTail:
    def test_increasing(self):
        assert monotonic_tail([1.0, 2.0, 5.0])

    def test_flat_ok(self):
        assert monotonic_tail([2.0, 2.0, 2.0])

    def test_decrease_fails(self):
        assert not monotonic_tail([3.0, 1.0])

    def test_tolerance_absorbs_noise(self):
        assert monotonic_tail([3.0, 2.9, 5.0], tolerance=0.2)

    def test_nans_skipped(self):
        assert monotonic_tail([1.0, float("nan"), 2.0])
