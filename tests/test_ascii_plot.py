"""Terminal plotting helpers."""

import math

import pytest

from repro.analysis.ascii_plot import ascii_xy_plot, figure_plot, sparkline
from repro.errors import ConfigurationError
from repro.experiments.figures import FigureData, Point
from repro.metrics.collector import RunMetrics


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == " "
        assert line[-1] == "@"
        assert len(line) == 5

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "@@@"

    def test_nan_renders_blank(self):
        line = sparkline([0.0, float("nan"), 4.0])
        assert line[1] == " "

    def test_empty_and_all_nan(self):
        assert sparkline([]) == ""
        assert sparkline([float("nan")]) == ""

    def test_width_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10


class TestAsciiXyPlot:
    def test_contains_marks_and_legend(self):
        plot = ascii_xy_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=6,
        )
        assert "o a" in plot
        assert "x b" in plot
        assert "o" in plot.splitlines()[0] + plot.splitlines()[-3]

    def test_axis_labels_show_range(self):
        plot = ascii_xy_plot({"s": [(0.5, 10.0), (0.9, 40.0)]})
        assert "40" in plot
        assert "10" in plot
        assert "0.5" in plot and "0.9" in plot

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            ascii_xy_plot({"s": [(0, 0)]}, width=2, height=2)

    def test_all_nan_points(self):
        plot = ascii_xy_plot({"s": [(float("nan"), float("nan"))]})
        assert "no finite points" in plot

    def test_single_point(self):
        plot = ascii_xy_plot({"s": [(1.0, 2.0)]}, width=12, height=5)
        assert "o" in plot


def _metrics(sigma):
    return RunMetrics(
        mean_delivery_interval_ms=33.0,
        std_delivery_interval_ms=sigma,
        frames_delivered=10,
        interval_count=9,
        be_latency_us=5.0,
        be_latency_us_paper_equivalent=100.0,
        be_latency_std_us=1.0,
        be_message_count=10,
    )


class TestFigurePlot:
    def test_numeric_x_axis(self):
        fig = FigureData(
            "figX",
            "t",
            "load",
            {"vc": [Point(0.6, _metrics(0.1)), Point(0.9, _metrics(2.0))]},
        )
        plot = figure_plot(fig, metric="sigma_d")
        assert "sigma_d vs load" in plot

    def test_categorical_x_mapped_to_position(self):
        fig = FigureData(
            "figY",
            "t",
            "mix",
            {"s": [Point("20:80", _metrics(0.1)), Point("80:20", _metrics(0.4))]},
        )
        plot = figure_plot(fig, metric="sigma_d")
        assert "0" in plot and "1" in plot

    def test_other_metrics(self):
        fig = FigureData(
            "figZ", "t", "load", {"s": [Point(0.5, _metrics(0.1))]}
        )
        assert "d vs load" in figure_plot(fig, metric="d")
