"""Network assembly, the cycle loop, and conservation audits."""

import pytest

from repro.errors import (
    ConfigurationError,
    PortCountError,
    SimulationError,
)
from repro.network.network import Network
from repro.network.topology import fat_mesh_2x2, single_switch
from repro.router.config import RouterConfig
from repro.router.flit import TrafficClass

from conftest import deliver_all, make_message, make_network


class TestConstruction:
    def test_port_count_mismatch_is_rejected(self):
        # config says 8 ports but the topology needs 4: refuse loudly
        # instead of silently adapting (PortCountError is a typed
        # ConfigurationError so existing handlers still catch it)
        with pytest.raises(PortCountError, match="num_ports=4"):
            Network(single_switch(4), RouterConfig(num_ports=8, vcs_per_pc=2))
        assert issubclass(PortCountError, ConfigurationError)

    def test_matching_port_count_is_accepted(self):
        net = Network(single_switch(4), RouterConfig(num_ports=4, vcs_per_pc=2))
        assert net.config.num_ports == 4

    def test_every_host_has_interface_and_sink(self):
        net = make_network(ports=4)
        assert set(net.interfaces) == {0, 1, 2, 3}
        assert set(net.sinks) == {0, 1, 2, 3}

    def test_host_credit_sinks_point_at_ni(self):
        net = make_network(ports=4, vcs=2)
        router = net.routers[0]
        ni = net.interfaces[2]
        for vc in router.inputs[2]:
            assert vc.credit_sink is ni.vcs[vc.index]

    def test_fat_mesh_channel_wiring(self):
        net = Network(fat_mesh_2x2(), RouterConfig(vcs_per_pc=2))
        for src_r, src_p, dst_r, dst_p in net.topology.channels:
            src = net.routers[src_r]
            dst = net.routers[dst_r]
            for vc_index in range(2):
                ovc = src.outputs[src_p][vc_index]
                ivc = dst.inputs[dst_p][vc_index]
                assert ovc.downstream is ivc
                assert ivc.credit_sink is ovc
                assert ovc.credits == net.config.flit_buffer_depth

    def test_host_output_has_no_credit_limit(self):
        net = make_network(ports=4)
        router = net.routers[0]
        for ovc in router.outputs[0]:
            assert ovc.downstream is None


class TestInjectionApi:
    def test_inject_now_counts_flits(self):
        net = make_network()
        net.inject_now(make_message(size=5))
        assert net.flits_injected == 5
        assert net.flits_in_flight == 5

    def test_unknown_source_rejected(self):
        net = make_network(ports=4)
        with pytest.raises(ConfigurationError):
            net.inject_now(make_message(src=9, dst=1))

    def test_unknown_destination_rejected(self):
        net = make_network(ports=4)
        with pytest.raises(ConfigurationError):
            net.inject_now(make_message(src=0, dst=9))

    def test_schedule_in_past_rejected(self):
        net = make_network()
        net.run(10)
        with pytest.raises(SimulationError):
            net.schedule_message(5, make_message())
        with pytest.raises(SimulationError):
            net.schedule_call(5, lambda: None)

    def test_scheduled_message_fires_at_time(self):
        net = make_network()
        msg = make_message(size=1)
        net.schedule_message(100, msg)
        net.run(300)
        assert msg.inject_time == 100
        assert msg.deliver_time == 107


class TestCycleLoop:
    def test_idle_network_jumps_clock(self):
        net = make_network()
        msg = make_message(size=1)
        net.schedule_message(1_000_000, msg)
        net.run(1_000_050)
        assert msg.deliver_time > 1_000_000
        assert net.clock == 1_000_050

    def test_run_is_resumable(self):
        net = make_network()
        msg = make_message(size=10)
        net.inject_now(msg)
        net.run(5)
        mid_clock = net.clock
        net.run(200)
        assert mid_clock == 5
        assert msg.deliver_time > 0

    def test_run_until_drained(self):
        net = make_network()
        msg = make_message(size=8)
        net.inject_now(msg)
        net.run_until_drained()
        assert net.flits_in_flight == 0
        assert msg.deliver_time > 0

    def test_run_until_drained_raises_when_stuck(self):
        # a best-effort message with no best-effort VCs never drains
        net = make_network(vcs=2, rt_vc_count=2)
        net.inject_now(
            make_message(
                vtick=1e12,
                traffic_class=TrafficClass.BEST_EFFORT,
                dst_vc=None,
            )
        )
        with pytest.raises(SimulationError):
            net.run_until_drained(max_extra=2_000)

    def test_clock_stops_at_until(self):
        net = make_network()
        net.run(123)
        assert net.clock == 123


class TestConservation:
    def test_conservation_during_flight(self):
        net = make_network()
        for i in range(6):
            net.inject_now(
                make_message(src=i % 4, dst=(i + 1) % 4, size=7, src_vc=i % 4,
                             dst_vc=i % 4)
            )
        for _ in range(15):
            net.run(net.clock + 2)
            net.check_conservation()

    def test_conservation_after_drain(self):
        net = make_network()
        net.inject_now(make_message(size=9))
        deliver_all(net)
        net.check_conservation()
        assert net.flits_injected == net.flits_ejected == 9

    def test_conservation_detects_counter_drift(self):
        net = make_network()
        net.inject_now(make_message(size=3))
        net._flits_in_flight += 1  # simulate a bookkeeping bug
        with pytest.raises(SimulationError):
            net.check_conservation()

    def test_delivery_callback_fires_once_per_message(self):
        delivered = []
        net = make_network(on_message=lambda m, t: delivered.append(m.msg_id))
        messages = [make_message(src=s, dst=(s + 1) % 4, size=4) for s in range(4)]
        for msg in messages:
            net.inject_now(msg)
        deliver_all(net)
        assert sorted(delivered) == sorted(m.msg_id for m in messages)
        assert net.messages_delivered == 4
