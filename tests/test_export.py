"""JSON export/import of reproduced figures and tables."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.export import (
    figure_from_dict,
    figure_to_dict,
    load_result,
    save_result,
    table2_from_dict,
    table2_to_dict,
    table3_from_dict,
    table3_to_dict,
)
from repro.experiments.figures import FigureData, Point
from repro.experiments.tables import Table2Data, Table3Data, Table3Row
from repro.metrics.collector import RunMetrics


def _metrics(d=33.0):
    return RunMetrics(
        mean_delivery_interval_ms=d,
        std_delivery_interval_ms=0.2,
        frames_delivered=42,
        interval_count=40,
        be_latency_us=8.5,
        be_latency_us_paper_equivalent=170.0,
        be_latency_std_us=1.2,
        be_message_count=100,
    )


def _figure():
    return FigureData(
        figure_id="fig3",
        title="demo",
        xlabel="load",
        series={
            "vc": [Point(0.6, _metrics()), Point(0.9, _metrics(34.0))],
            "fifo": [Point(0.6, _metrics(), extra={"note": 1})],
        },
        notes="hello",
    )


class TestFigureRoundtrip:
    def test_roundtrip_preserves_everything(self):
        fig = _figure()
        rebuilt = figure_from_dict(figure_to_dict(fig))
        assert rebuilt.figure_id == fig.figure_id
        assert rebuilt.xlabel == fig.xlabel
        assert rebuilt.notes == fig.notes
        assert list(rebuilt.series) == list(fig.series)
        assert rebuilt.series["vc"][1].metrics == fig.series["vc"][1].metrics
        assert rebuilt.series["fifo"][0].extra == {"note": 1}

    def test_dict_is_json_serialisable(self):
        json.dumps(figure_to_dict(_figure()))

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_from_dict({"kind": "table2"})


class TestTableRoundtrips:
    def test_table2(self):
        table = Table2Data(
            loads=[0.6, 0.9],
            mixes=[(80, 20), (50, 50)],
            latency_us={
                ((80, 20), 0.6): 10.0,
                ((80, 20), 0.9): 100.0,
                ((50, 50), 0.6): 7.0,
                ((50, 50), 0.9): 60.0,
            },
        )
        rebuilt = table2_from_dict(table2_to_dict(table))
        assert rebuilt.cell((80, 20), 0.9) == 100.0
        assert rebuilt.cell((50, 50), 0.6) == 7.0
        assert rebuilt.loads == table.loads

    def test_table3(self):
        table = Table3Data(
            rows=[Table3Row(0.9, 700, 180, 520, 182, 10)]
        )
        rebuilt = table3_from_dict(table3_to_dict(table))
        assert rebuilt.rows == table.rows

    def test_wrong_kinds_rejected(self):
        with pytest.raises(ConfigurationError):
            table2_from_dict({"kind": "figure"})
        with pytest.raises(ConfigurationError):
            table3_from_dict({"kind": "figure"})


class TestFileIo:
    def test_save_and_load_figure(self, tmp_path):
        path = tmp_path / "fig.json"
        save_result(path, _figure())
        loaded = load_result(path)
        assert isinstance(loaded, FigureData)
        assert loaded.figure_id == "fig3"

    def test_save_and_load_table3(self, tmp_path):
        path = tmp_path / "t3.json"
        save_result(path, Table3Data(rows=[Table3Row(0.5, 10, 8, 2, 8, 0)]))
        loaded = load_result(path)
        assert isinstance(loaded, Table3Data)

    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_result(tmp_path / "x.json", object())

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery"}')
        with pytest.raises(ConfigurationError):
            load_result(path)

    def test_cli_json_flag(self, tmp_path, monkeypatch):
        import repro.experiments.cli as cli
        from repro.experiments.figures import PROFILES, RunProfile
        import repro.experiments.figures as figures

        monkeypatch.setitem(
            PROFILES,
            "tiny",
            RunProfile("tiny", scale=100.0, warmup_frames=1, measure_frames=2),
        )
        monkeypatch.setattr(figures, "DEFAULT_LOADS", (0.4,))
        out = tmp_path / "fig3.json"
        assert (
            cli.main(
                ["run", "fig3", "--profile", "tiny", "--json", str(out)]
            )
            == 0
        )
        loaded = load_result(out)
        assert loaded.figure_id == "fig3"
