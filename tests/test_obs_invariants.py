"""Invariant-backed integration tests over real tier-1 traffic.

Every workload family the suite exercises elsewhere — CBR/VBR/
best-effort mixes, multiplexed and full crossbars, Virtual Clock and
FIFO multiplexing, the fat mesh, faulted runs with recovery, and the
adaptive-failover stack — is re-run here with an
:class:`~repro.obs.InvariantChecker` riding the event stream, so flit
conservation, monotone worm progress, and credit consistency are
asserted on real traffic rather than toy fixtures, on both the
active-set and the legacy loop.

A run passes simply by completing: the checker raises
:class:`~repro.errors.InvariantViolation` mid-run on the first
inconsistent event, and the runner's :class:`TraceSpec(check=True)
<repro.obs.TraceSpec>` harness closes the conservation ledger (plus a
final credit/structural audit) when the run finishes.
"""

import dataclasses

import pytest

from conftest import TINY

from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import FatMeshExperiment, SingleSwitchExperiment
from repro.experiments.failover import _fat_pair_windows
from repro.experiments.runner import simulate_fat_mesh, simulate_single_switch
from repro.faults import FaultPlan, RecoveryConfig
from repro.network.health import HealthConfig
from repro.obs import TraceSpec
from repro.router.config import CrossbarKind, RoutingMode
from repro.router.flit import TrafficClass

CHECK = TraceSpec(check=True)


@pytest.fixture
def loop(request, monkeypatch):
    if request.param:
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
    else:
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
    return request.param


def _checked(result):
    """The run already passed (no raise); sanity-check the audit ran."""
    summary = result.trace_summary
    assert summary["invariant_events"] == summary["events"] > 0
    assert summary["invariant_checks"] > 0
    return result


@pytest.mark.parametrize("loop", [False, True], indirect=True)
class TestWorkloadMixesUnderChecker:
    """The paper's traffic families on the main single-switch testbed."""

    @pytest.mark.parametrize(
        "rt_class,mix",
        [
            (TrafficClass.VBR, (80, 20)),   # headline 80:20 VBR + BE
            (TrafficClass.CBR, (80, 20)),   # CBR + best-effort
            (TrafficClass.VBR, (100, 0)),   # pure real-time
            (TrafficClass.VBR, (50, 50)),   # best-effort heavy
        ],
    )
    def test_mix(self, loop, rt_class, mix):
        experiment = SingleSwitchExperiment(
            load=0.7, mix=mix, rt_class=rt_class, trace=CHECK, **TINY
        )
        _checked(simulate_single_switch(experiment))

    @pytest.mark.parametrize(
        "crossbar", [CrossbarKind.MULTIPLEXED, CrossbarKind.FULL]
    )
    def test_crossbar_kinds(self, loop, crossbar):
        experiment = SingleSwitchExperiment(
            load=0.7, mix=(80, 20), crossbar=crossbar, trace=CHECK, **TINY
        )
        _checked(simulate_single_switch(experiment))

    def test_fifo_multiplexing(self, loop):
        experiment = SingleSwitchExperiment(
            load=0.7,
            mix=(80, 20),
            scheduler=SchedulingPolicy.FIFO,
            trace=CHECK,
            **TINY,
        )
        _checked(simulate_single_switch(experiment))


@pytest.mark.parametrize("loop", [False, True], indirect=True)
class TestFatMeshUnderChecker:
    def test_fat_mesh_mix(self, loop):
        experiment = FatMeshExperiment(
            load=0.6, mix=(80, 20), trace=CHECK, **TINY
        )
        _checked(simulate_fat_mesh(experiment))


class TestSaturationUnderChecker:
    def test_overloaded_switch_conserves_flits(self):
        """Past saturation, blocked worms must still account exactly."""
        experiment = SingleSwitchExperiment(
            load=0.96, mix=(80, 20), trace=CHECK, **TINY
        )
        _checked(simulate_single_switch(experiment))

    def test_full_crossbar_near_saturation(self):
        experiment = SingleSwitchExperiment(
            load=0.9,
            mix=(80, 20),
            crossbar=CrossbarKind.FULL,
            trace=CHECK,
            **TINY,
        )
        _checked(simulate_single_switch(experiment))


def _faulted_experiment(**overrides):
    """A lossy single-switch run with the recovery transport installed."""
    base = SingleSwitchExperiment(load=0.6, mix=(80, 20), **TINY)
    interval = base.workload_config().frame_interval_cycles
    kwargs = dict(
        faults=FaultPlan(flit_loss_prob=0.002, flit_corrupt_prob=0.002),
        recovery=RecoveryConfig(
            timeout=max(512, interval // 2),
            max_retries=4,
            backoff_base=max(16, interval // 256),
            backoff_cap=max(64, interval // 16),
        ),
        trace=CHECK,
    )
    kwargs.update(overrides)
    return dataclasses.replace(base, **kwargs)


@pytest.mark.parametrize("loop", [False, True], indirect=True)
class TestFaultedRunsUnderChecker:
    def test_losses_and_retransmissions_balance_the_ledger(self, loop):
        result = _checked(simulate_single_switch(_faulted_experiment()))
        counts = result.trace_summary["counts"]
        # the fault machinery actually fired, so the checker audited
        # lost/purged/retransmitted flits, not just the clean lifecycle
        assert counts.get("flit_lost", 0) > 0
        assert counts.get("retransmit", 0) > 0
        assert counts.get("purge", 0) > 0

    def test_adaptive_failover_under_checker(self, loop):
        """Permanent fat-pair failures + detours + requeues, audited."""
        base = FatMeshExperiment(
            load=0.6, mix=(80, 20),
            scale=100.0, warmup_frames=1, measure_frames=3, seed=7,
        )
        interval = base.workload_config().frame_interval_cycles
        experiment = dataclasses.replace(
            base,
            faults=FaultPlan(
                down_windows=_fat_pair_windows(base, 8, base.warmup_cycles)
            ),
            recovery=RecoveryConfig(
                timeout=max(512, interval // 2),
                max_retries=8,
                backoff_base=max(16, interval // 256),
                backoff_cap=max(64, interval // 16),
            ),
            health=HealthConfig(),
            routing_mode=RoutingMode.ADAPTIVE,
            trace=CHECK,
        )
        result = _checked(simulate_fat_mesh(experiment))
        counts = result.trace_summary["counts"]
        assert counts.get("health", 0) > 0
        assert result.fault_stats["health"]["link_downs"] > 0
