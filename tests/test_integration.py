"""Integration: the paper's qualitative claims at miniature scale.

These tests run real (but tiny) workloads through the full stack and
check *shape*: who wins, what degrades, what stays flat.  Absolute
numbers come from the benchmark harness, not from here.
"""

import pytest

from repro.analysis import dominates, is_jitter_free_point, monotonic_tail
from repro.core.schedulers import SchedulingPolicy
from repro.experiments.config import (
    FatMeshExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
)
from repro.experiments.runner import (
    simulate_fat_mesh,
    simulate_pcs,
    simulate_single_switch,
)

SMALL = dict(scale=50.0, warmup_frames=2, measure_frames=4, seed=1)


def _run(load, mix=(80, 20), **overrides):
    kwargs = dict(SMALL)
    kwargs.update(overrides)
    return simulate_single_switch(
        SingleSwitchExperiment(load=load, mix=mix, **kwargs)
    )


class TestSingleSwitchClaims:
    def test_jitter_free_at_moderate_load(self):
        metrics = _run(0.6).metrics
        assert is_jitter_free_point(metrics.d, metrics.sigma_d)

    def test_jitter_grows_with_load(self):
        low = _run(0.5).metrics
        high = _run(0.96).metrics
        assert high.sigma_d > low.sigma_d

    def test_virtual_clock_beats_fifo_near_saturation(self):
        vclock = _run(1.0, scheduler=SchedulingPolicy.VIRTUAL_CLOCK).metrics
        fifo = _run(1.0, scheduler=SchedulingPolicy.FIFO).metrics
        assert vclock.sigma_d < fifo.sigma_d
        assert vclock.d < fifo.d

    def test_best_effort_latency_grows_with_load(self):
        latencies = [_run(load).metrics.be_latency_us for load in (0.4, 0.7, 0.9)]
        assert monotonic_tail(latencies)

    def test_best_effort_presence_does_not_hurt_real_time(self):
        # 80:20 at the same *real-time* load as a pure run: jitter stays
        # comparable (the paper's "no adverse effect" claim).
        pure = _run(0.56, mix=(100, 0)).metrics
        mixed = _run(0.7, mix=(80, 20)).metrics  # rt component = 0.56
        assert mixed.sigma_d <= pure.sigma_d + 1.0

    def test_cbr_no_worse_than_vbr(self):
        vbr = _run(0.8, mix=(100, 0), rt_class="vbr").metrics
        cbr = _run(0.8, mix=(100, 0), rt_class="cbr").metrics
        assert cbr.sigma_d <= vbr.sigma_d + 0.5

    def test_more_vcs_do_not_hurt(self):
        few = _run(0.9, mix=(100, 0), vcs_per_pc=4).metrics
        many = _run(0.9, mix=(100, 0), vcs_per_pc=16).metrics
        assert many.sigma_d <= few.sigma_d + 0.5

    def test_full_crossbar_at_least_as_good_as_multiplexed(self):
        muxed = _run(0.9, mix=(100, 0), vcs_per_pc=4, crossbar="multiplexed")
        full = _run(0.9, mix=(100, 0), vcs_per_pc=4, crossbar="full")
        assert full.metrics.sigma_d <= muxed.metrics.sigma_d + 0.5

    def test_round_robin_also_rate_agnostic(self):
        # round-robin behaves like FIFO at saturation: worse than VClock
        vclock = _run(1.0, scheduler=SchedulingPolicy.VIRTUAL_CLOCK).metrics
        rr = _run(1.0, scheduler=SchedulingPolicy.ROUND_ROBIN).metrics
        assert vclock.d <= rr.d + 0.5


class TestPcsClaims:
    def test_pcs_never_jitters_on_established_streams(self):
        result = simulate_pcs(PCSExperiment(load=0.8, **SMALL))
        assert result.metrics.sigma_d < 2.0

    def test_pcs_drops_while_wormhole_accepts_everything(self):
        pcs = simulate_pcs(PCSExperiment(load=0.8, **SMALL))
        wormhole = _run(
            0.8, mix=(100, 0), bandwidth_mbps=100.0, vcs_per_pc=24
        )
        assert pcs.connections.dropped > 0
        # wormhole serves every offered stream
        assert wormhole.workload.streams_per_node * 8 == len(
            wormhole.workload.streams
        )


class TestFatMeshClaims:
    def test_fat_mesh_jitter_free_at_moderate_mix(self):
        result = simulate_fat_mesh(
            FatMeshExperiment(load=0.7, mix=(40, 60), **SMALL)
        )
        assert is_jitter_free_point(result.metrics.d, result.metrics.sigma_d)

    def test_fat_mesh_be_latency_grows_with_rt_share(self):
        latencies = []
        for mix in ((40, 60), (80, 20)):
            result = simulate_fat_mesh(
                FatMeshExperiment(load=0.8, mix=mix, **SMALL)
            )
            latencies.append(result.metrics.be_latency_us)
        assert latencies[1] > latencies[0]

    def test_fat_mesh_no_worse_than_20_percent_loss_of_flits(self):
        result = simulate_fat_mesh(
            FatMeshExperiment(load=0.6, mix=(60, 40), **SMALL)
        )
        # everything injected is either delivered or still in flight
        assert result.flits_ejected > 0.8 * result.flits_injected
