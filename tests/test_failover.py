"""The failover campaign and the checkpoint-key fingerprint."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments import failover
from repro.experiments.config import FatMeshExperiment
from repro.experiments.failover import (
    CAMPAIGN_MODES,
    _campaign_experiment,
    _fat_pair_windows,
    _point_key,
    failover_campaign_to_text,
    run_failover_campaign,
)
from repro.experiments.faultsweep import _point_key as fault_point_key
from repro.experiments.figures import get_profile
from repro.experiments.parallel import sweep_fingerprint
from repro.experiments.resilience import SweepCheckpoint
from repro.experiments.runner import ExperimentResult
from repro.metrics.collector import RunMetrics
from repro.network.health import HealthConfig
from repro.faults import RecoveryConfig
from repro.router.config import RoutingMode


class TestSweepFingerprint:
    def test_default_experiment_fingerprint_is_empty(self):
        assert sweep_fingerprint(FatMeshExperiment()) == ""

    def test_routing_mode_changes_the_fingerprint(self):
        experiment = FatMeshExperiment(routing_mode=RoutingMode.ADAPTIVE)
        assert "mode=adaptive" in sweep_fingerprint(experiment)

    def test_health_knobs_are_encoded(self):
        a = FatMeshExperiment(health=HealthConfig())
        b = FatMeshExperiment(health=HealthConfig(down_misses=9))
        assert sweep_fingerprint(a) != ""
        assert sweep_fingerprint(a) != sweep_fingerprint(b)

    def test_qos_deadline_is_encoded(self):
        experiment = FatMeshExperiment(
            recovery=RecoveryConfig(qos_deadline=4096)
        )
        assert "deadline=4096" in sweep_fingerprint(experiment)

    def test_fault_sweep_keys_stay_stable_at_defaults(self):
        """Old fault-campaign checkpoints must keep restoring."""
        assert fault_point_key("vc", 0.005) == "vc@0.005"
        assert fault_point_key("vc", 0.005, FatMeshExperiment()) == "vc@0.005"

    def test_fault_sweep_keys_change_with_non_default_knobs(self):
        experiment = FatMeshExperiment(routing_mode=RoutingMode.ADAPTIVE)
        assert fault_point_key("vc", 0.005, experiment) == (
            "vc@0.005|mode=adaptive"
        )

    def test_failover_keys_always_fingerprinted(self):
        experiment = _campaign_experiment(
            get_profile("quick"), RoutingMode.ADAPTIVE, 2
        )
        key = _point_key(RoutingMode.ADAPTIVE, 2, experiment)
        assert key.startswith("adaptive@2|")
        assert "mode=adaptive" in key
        assert "health[" in key
        changed = dataclasses.replace(
            experiment, health=HealthConfig(probe_interval=2048)
        )
        assert _point_key(RoutingMode.ADAPTIVE, 2, changed) != key


class TestFatPairWindows:
    def test_one_permanent_failure_per_pair(self):
        base = FatMeshExperiment()
        windows = _fat_pair_windows(base, 8, onset=1000)
        assert len(windows) == 8
        assert all(w.end is None and w.start == 1000 for w in windows)
        # one member per directed pair: all labels distinct, and every
        # pair keeps a healthy sibling (fat_width=2, one failure each)
        assert len({w.link for w in windows}) == 8

    def test_zero_severity_is_fault_free(self):
        assert _fat_pair_windows(FatMeshExperiment(), 0, onset=0) == ()

    def test_severity_beyond_pair_count_rejected(self):
        with pytest.raises(ConfigurationError, match="fat pairs"):
            _fat_pair_windows(FatMeshExperiment(), 9, onset=0)


class TestCampaignExperiment:
    def test_point_carries_the_failover_stack(self):
        experiment = _campaign_experiment(
            get_profile("quick"), RoutingMode.STATIC, 4
        )
        assert experiment.routing_mode == RoutingMode.STATIC
        assert experiment.health == HealthConfig()
        assert len(experiment.faults.down_windows) == 4
        assert experiment.recovery.qos_deadline is not None
        assert experiment.watchdog_window is not None
        # failures land at the end of warmup, inside measurement
        assert all(
            w.start == experiment.warmup_cycles
            for w in experiment.faults.down_windows
        )


def _fake_result(experiment):
    severity = len(experiment.faults.down_windows)
    adaptive = experiment.routing_mode == RoutingMode.ADAPTIVE
    fraction = 1.0 if adaptive else max(0.0, 1.0 - 0.05 * severity)
    metrics = RunMetrics(33.0, 0.5, 100, 99, 10.0, 10.0, 1.0, 50)
    return ExperimentResult(
        experiment=experiment,
        metrics=metrics,
        workload=None,
        cycles_run=1000,
        flits_injected=10,
        flits_ejected=10,
        wall_seconds=0.0,
        fault_stats={
            "qos_delivered_fraction": fraction,
            "qos_deadline_misses": 0,
            "qos_abandoned": 0 if adaptive else severity,
            "health": {
                "reroutes": 3 if adaptive else 0,
                "detours": 0,
                "worms_requeued": 0,
                "streams_shed": severity,
            },
        },
    )


class TestRunFailoverCampaign:
    def test_series_shape_and_extras(self, monkeypatch):
        monkeypatch.setattr(failover, "simulate_fat_mesh", _fake_result)
        fig = run_failover_campaign("quick", severities=(0, 2))
        assert fig.figure_id == "failover"
        assert set(fig.series) == set(CAMPAIGN_MODES)
        for mode in CAMPAIGN_MODES:
            assert [p.x for p in fig.series[mode]] == [0, 2]
        adaptive = fig.series[RoutingMode.ADAPTIVE][1]
        static = fig.series[RoutingMode.STATIC][1]
        assert adaptive.extra["qos_delivered_fraction"] == 1.0
        assert static.extra["qos_delivered_fraction"] < 1.0

    def test_checkpoint_restores_completed_points(self, monkeypatch, tmp_path):
        monkeypatch.setattr(failover, "simulate_fat_mesh", _fake_result)
        path = tmp_path / "failover.ckpt.json"
        meta = {"command": "failover"}
        run_failover_campaign(
            "quick", severities=(0,), checkpoint=SweepCheckpoint(path, meta=meta)
        )

        def boom(experiment):
            raise AssertionError("restored points must not recompute")

        monkeypatch.setattr(failover, "simulate_fat_mesh", boom)
        logs = []
        fig = run_failover_campaign(
            "quick",
            severities=(0,),
            checkpoint=SweepCheckpoint(path, meta=meta),
            log=logs.append,
        )
        assert any("restored from checkpoint" in line for line in logs)
        assert [p.x for p in fig.series[RoutingMode.ADAPTIVE]] == [0]

    def test_failed_point_recorded_not_fatal(self, monkeypatch):
        def flaky(experiment):
            if experiment.routing_mode == RoutingMode.STATIC:
                raise SimulationError("wedged")
            return _fake_result(experiment)

        monkeypatch.setattr(failover, "simulate_fat_mesh", flaky)
        fig = run_failover_campaign("quick", severities=(2,))
        static = fig.series[RoutingMode.STATIC][0]
        assert "failed" in static.extra
        assert "SimulationError" in static.extra["failed"]
        text = failover_campaign_to_text(fig)
        assert "FAILED" in text

    def test_text_rendering(self, monkeypatch):
        monkeypatch.setattr(failover, "simulate_fat_mesh", _fake_result)
        fig = run_failover_campaign("quick", severities=(0, 2))
        text = failover_campaign_to_text(fig)
        assert "qos frac" in text
        assert "adaptive" in text and "static" in text
        assert "0.9000" in text  # static @ severity 2
