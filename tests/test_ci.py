"""Confidence intervals and seed replication."""

import pytest
from scipy import stats as scipy_stats

from repro.analysis.ci import (
    ConfidenceInterval,
    run_with_seeds,
    t_confidence_interval,
)
from repro.errors import ConfigurationError


class TestTConfidenceInterval:
    def test_matches_scipy_reference(self):
        samples = [2.1, 2.5, 1.9, 2.3, 2.2]
        ci = t_confidence_interval(samples, 0.95)
        low, high = scipy_stats.t.interval(
            0.95,
            len(samples) - 1,
            loc=scipy_stats.tmean(samples),
            scale=scipy_stats.sem(samples),
        )
        assert ci.low == pytest.approx(low)
        assert ci.high == pytest.approx(high)

    def test_contains_mean(self):
        ci = t_confidence_interval([1.0, 2.0, 3.0])
        assert ci.contains(2.0)
        assert not ci.contains(100.0)

    def test_higher_confidence_is_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        narrow = t_confidence_interval(samples, 0.90)
        wide = t_confidence_interval(samples, 0.99)
        assert wide.half_width > narrow.half_width

    def test_more_samples_are_tighter(self):
        few = t_confidence_interval([1.0, 2.0, 3.0])
        many = t_confidence_interval([1.0, 2.0, 3.0] * 10)
        assert many.half_width < few.half_width

    def test_identical_samples_zero_width(self):
        ci = t_confidence_interval([5.0, 5.0, 5.0])
        assert ci.half_width == pytest.approx(0.0)
        assert ci.mean == 5.0

    def test_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            t_confidence_interval([1.0])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            t_confidence_interval([1.0, 2.0], confidence=1.0)

    def test_str_rendering(self):
        text = str(t_confidence_interval([1.0, 2.0, 3.0]))
        assert "95%" in text and "n=3" in text


class TestRunWithSeeds:
    def test_calls_run_per_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return float(seed)

        ci = run_with_seeds(run, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3

    def test_rejects_single_seed(self):
        with pytest.raises(ConfigurationError):
            run_with_seeds(lambda s: 1.0, seeds=[1])

    def test_replicated_simulation_ci(self):
        # seeds change details but a low-load run stays near 33 ms
        from repro.experiments.config import SingleSwitchExperiment
        from repro.experiments.runner import simulate_single_switch

        def run(seed):
            exp = SingleSwitchExperiment(
                load=0.4,
                mix=(100, 0),
                scale=100.0,
                warmup_frames=1,
                measure_frames=2,
                seed=seed,
            )
            return simulate_single_switch(exp).metrics.d

        ci = run_with_seeds(run, seeds=[1, 2, 3])
        assert ci.contains(33.0) or abs(ci.mean - 33.0) < 1.0
