"""Pipelined circuit switching: connection management and simulation."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import PCSExperiment
from repro.experiments.runner import simulate_pcs
from repro.pcs.connection import ConnectionManager

A, B, C = ("in", 0), ("out", 1), ("out", 2)


def _manager(vcs=2):
    manager = ConnectionManager()
    for channel in (A, B, C):
        manager.add_channel(channel, vcs)
    return manager


class TestConnectionManager:
    def test_probe_reserves_path(self):
        manager = _manager()
        assignment = manager.probe(1, [A, B])
        assert set(assignment) == {A, B}
        assert manager.free_vcs(A) == 1
        assert manager.stats.established == 1
        assert manager.established_circuits == 1

    def test_probe_nack_when_full(self):
        manager = _manager(vcs=1)
        assert manager.probe(1, [A, B]) is not None
        assert manager.probe(2, [A, C]) is None  # A exhausted
        assert manager.stats.dropped == 1
        # partial reservation on C must have been rolled back
        assert manager.free_vcs(C) == 1

    def test_accounting_identity(self):
        manager = _manager(vcs=1)
        manager.probe(1, [A, B])
        manager.probe(2, [A, C])
        manager.probe(3, [C])
        manager.stats.check()
        assert manager.stats.attempts == 3
        assert manager.stats.established == 2
        assert manager.stats.dropped == 1

    def test_release_returns_vcs(self):
        manager = _manager(vcs=1)
        manager.probe(1, [A, B])
        manager.release(1)
        assert manager.free_vcs(A) == 1
        assert manager.probe(2, [A, B]) is not None
        assert manager.stats.released == 1

    def test_release_unknown_circuit_raises(self):
        with pytest.raises(SimulationError):
            _manager().release(42)

    def test_double_establish_raises(self):
        manager = _manager()
        manager.probe(1, [A])
        with pytest.raises(SimulationError):
            manager.probe(1, [B])

    def test_unknown_channel_raises(self):
        with pytest.raises(ConfigurationError):
            _manager().probe(1, [("nowhere", 9)])

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            _manager().probe(1, [])

    def test_duplicate_channel_registration_rejected(self):
        manager = _manager()
        with pytest.raises(ConfigurationError):
            manager.add_channel(A, 2)

    def test_assignment_lookup(self):
        manager = _manager()
        assignment = manager.probe(7, [A, B])
        assert manager.assignment(7) == assignment


class TestProbeSpecific:
    def test_reserves_exact_vcs(self):
        manager = _manager(vcs=4)
        assignment = manager.probe_specific(1, [(A, 2), (B, 3)])
        assert assignment == {A: 2, B: 3}
        assert manager.free_vcs(A) == 3

    def test_collision_nacks_and_rolls_back(self):
        manager = _manager(vcs=4)
        manager.probe_specific(1, [(A, 2), (B, 3)])
        assert manager.probe_specific(2, [(C, 0), (A, 2)]) is None
        assert manager.free_vcs(C) == 4  # rollback
        assert manager.stats.dropped == 1

    def test_different_vcs_coexist(self):
        manager = _manager(vcs=4)
        assert manager.probe_specific(1, [(A, 0)]) is not None
        assert manager.probe_specific(2, [(A, 1)]) is not None
        assert manager.free_vcs(A) == 2

    def test_out_of_range_vc_rejected(self):
        with pytest.raises(ConfigurationError):
            _manager(vcs=2).probe_specific(1, [(A, 5)])

    def test_malformed_request_leaves_no_trace(self):
        # a malformed request is a programming error, not a dropped
        # connection: it must not count as an attempt or leak a partial
        # reservation on the channels before the bad entry
        manager = _manager(vcs=2)
        with pytest.raises(ConfigurationError):
            manager.probe_specific(1, [(A, 0), (B, 5)])
        assert manager.free_vcs(A) == 2
        assert manager.stats.attempts == 0
        assert manager.established_circuits == 0
        manager.stats.check()

    def test_unknown_channel_mid_path_leaves_no_trace(self):
        manager = _manager(vcs=2)
        with pytest.raises(ConfigurationError):
            manager.probe(1, [A, ("nowhere", 9)])
        assert manager.free_vcs(A) == 2
        assert manager.stats.attempts == 0
        manager.stats.check()

    def test_release_restores_the_specific_vc(self):
        # teardown accounting: a released circuit's VC is reusable and
        # the released counter tracks it
        manager = _manager(vcs=2)
        manager.probe_specific(1, [(A, 1)])
        assert manager.probe_specific(2, [(A, 1)]) is None  # conflict
        manager.release(1)
        assert manager.probe_specific(3, [(A, 1)]) is not None
        manager.stats.check()
        assert manager.stats.released == 1
        assert manager.established_circuits == 1

    def test_double_release_raises(self):
        manager = _manager()
        manager.probe_specific(1, [(A, 0)])
        manager.release(1)
        with pytest.raises(SimulationError):
            manager.release(1)


TINY_PCS = dict(scale=80.0, warmup_frames=1, measure_frames=2, seed=3)


def _bare_simulator(topology=None, **kw):
    from repro.metrics.collector import MetricsCollector
    from repro.pcs.simulator import PCSSimulator

    exp = PCSExperiment(load=0.2, **TINY_PCS, **kw)
    collector = MetricsCollector(exp.timebase, warmup=exp.warmup_cycles)
    return PCSSimulator(exp, collector, topology=topology)


class TestSetupLatency:
    """The probe/ack round trip delays the data phase (section 3.5)."""

    def _capture_start(self, simulator, src, dst):
        from repro.pcs.simulator import _OfferedStream

        starts = []
        simulator._start_data_phase = (
            lambda offered, assignment, start: starts.append(start)
        )
        offered = _OfferedStream(
            index=10_000, src_node=src, dst_node=dst, retries=0
        )
        simulator._attempt_setup(offered)
        assert len(starts) == 1, "setup unexpectedly NACKed"
        return starts[0]

    def test_single_switch_round_trip(self):
        simulator = _bare_simulator()
        start = self._capture_start(simulator, 0, 1)
        # reservation path: source host link + destination host link
        # (no inter-router hop on a single switch); the probe walks it
        # out and the ack walks it back
        hop = simulator.experiment.setup_hop_cycles
        assert start == simulator.network.clock + 2 * 2 * hop

    def test_mesh_path_adds_a_hop_per_channel(self):
        from repro.network.topology import fat_mesh_2x2

        simulator = _bare_simulator(topology=fat_mesh_2x2())
        # node 0 (router 0) to node 12 (router 3): 2 inter-router
        # channels + the two host links = 4 reservation hops each way
        start = self._capture_start(simulator, 0, 12)
        hop = simulator.experiment.setup_hop_cycles
        assert start == simulator.network.clock + 2 * 4 * hop

    def test_exhausted_source_link_abandons_without_retries(self):
        from repro.pcs.simulator import _OfferedStream

        simulator = _bare_simulator()
        manager = simulator.manager
        vcs = simulator.experiment.vcs_per_pc
        for vc in range(vcs):
            assert manager.probe_specific(
                20_000 + vc, [(("host-in", 0), vc)]
            ) is not None
        offered = _OfferedStream(
            index=10_000, src_node=0, dst_node=1, retries=0
        )
        before = manager.stats.abandoned_streams
        simulator._attempt_setup(offered)
        assert manager.stats.abandoned_streams == before + 1
        assert offered.stream is None
        manager.stats.check()


class TestPCSSimulation:
    def test_low_load_establishes_everything_eventually(self):
        result = simulate_pcs(PCSExperiment(load=0.2, **TINY_PCS))
        stats = result.connections
        stats.check()
        assert stats.established == result.offered_streams
        assert stats.abandoned_streams == 0

    def test_streams_deliver_jitter_free_at_low_load(self):
        result = simulate_pcs(PCSExperiment(load=0.3, **TINY_PCS))
        assert result.metrics.d == pytest.approx(33.0, abs=1.0)
        assert result.metrics.sigma_d < 2.0

    def test_drops_grow_with_load(self):
        low = simulate_pcs(PCSExperiment(load=0.3, **TINY_PCS))
        high = simulate_pcs(PCSExperiment(load=0.9, **TINY_PCS))
        assert high.connections.dropped > low.connections.dropped
        assert high.connections.attempts > high.connections.established

    def test_established_bounded_by_vc_capacity(self):
        result = simulate_pcs(PCSExperiment(load=0.95, **TINY_PCS))
        # each node's input link has 24 VCs -> at most 24 circuits/node
        assert result.established_streams <= 8 * 24

    def test_accounting_identity_holds(self):
        result = simulate_pcs(PCSExperiment(load=0.7, **TINY_PCS))
        stats = result.connections
        assert stats.attempts == stats.established + stats.dropped

    def test_mixed_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_pcs(PCSExperiment(load=0.5, mix=(80, 20), **TINY_PCS))

    def test_no_retries_abandons_on_first_nack(self):
        result = simulate_pcs(
            PCSExperiment(load=0.9, max_retries=0, **TINY_PCS)
        )
        stats = result.connections
        assert stats.attempts == result.offered_streams
        assert stats.abandoned_streams == stats.dropped


class TestPCSOnFatMesh:
    """Beyond the paper: PCS circuits across a multi-router topology."""

    def _simulate(self, load=0.5):
        from repro.metrics.collector import MetricsCollector
        from repro.network.topology import fat_mesh_2x2
        from repro.pcs.simulator import PCSSimulator

        exp = PCSExperiment(
            load=load, scale=80.0, warmup_frames=1, measure_frames=2, seed=3
        )
        collector = MetricsCollector(exp.timebase, warmup=exp.warmup_cycles)
        simulator = PCSSimulator(exp, collector, topology=fat_mesh_2x2())
        return simulator, collector

    def test_circuit_channels_local_pair_is_empty(self):
        simulator, _ = self._simulate()
        # nodes 0 and 1 hang off the same router: no inter-switch hop
        assert simulator.circuit_channels(0, 1) == []

    def test_circuit_channels_cross_mesh(self):
        simulator, _ = self._simulate()
        # node 0 (router 0) to node 12 (router 3): X then Y, two hops
        channels = simulator.circuit_channels(0, 12)
        assert len(channels) == 2
        assert all(kind == "link" for kind, _, _ in channels)
        assert channels[0][1] == 0  # leaves router 0
        assert channels[1][1] == 1  # crosses router 1 (x-first routing)

    def test_fat_mesh_circuits_deliver(self):
        simulator, collector = self._simulate(load=0.4)
        simulator.run()
        stats = simulator.manager.stats
        stats.check()
        assert stats.established > 0
        assert collector.delivery.frames_delivered > 0

    def test_multi_hop_paths_drop_more(self):
        # The same offered load drops more circuits on the mesh than on
        # a single switch: every extra hop is another VC draw to lose.
        single_result = simulate_pcs(PCSExperiment(load=0.7, **TINY_PCS))
        simulator, _ = self._simulate(load=0.7)
        simulator.run()
        mesh_stats = simulator.manager.stats
        single = single_result.connections
        mesh_rate = mesh_stats.dropped / mesh_stats.attempts
        single_rate = single.dropped / single.attempts
        assert mesh_rate > single_rate * 0.8  # at least comparable
