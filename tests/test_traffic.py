"""Traffic generation: MPEG models, streams, best-effort sources."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.network.network import Network
from repro.router.flit import TrafficClass
from repro.sim.rng import RngStreams
from repro.traffic.besteffort import BestEffortConfig, BestEffortSource
from repro.traffic.mpeg import FrameSizeModel, cbr_frame_model, vbr_frame_model
from repro.traffic.streams import MediaStream, StreamConfig

from conftest import make_network


class TestFrameSizeModel:
    def test_cbr_is_constant(self):
        model = cbr_frame_model(100.0)
        rng = RngStreams(1).stream("t")
        assert [model.draw(rng) for _ in range(10)] == [100] * 10
        assert model.is_constant

    def test_vbr_varies(self):
        model = vbr_frame_model(100.0, 20.0)
        rng = RngStreams(1).stream("t")
        sizes = [model.draw(rng) for _ in range(50)]
        assert len(set(sizes)) > 1
        assert not model.is_constant

    def test_vbr_mean_matches(self):
        model = vbr_frame_model(200.0, 40.0)
        rng = RngStreams(2).stream("t")
        sizes = [model.draw(rng) for _ in range(3000)]
        assert sum(sizes) / len(sizes) == pytest.approx(200.0, rel=0.05)

    def test_vbr_std_matches(self):
        model = vbr_frame_model(200.0, 40.0)
        rng = RngStreams(2).stream("t")
        sizes = [model.draw(rng) for _ in range(3000)]
        mean = sum(sizes) / len(sizes)
        std = math.sqrt(sum((s - mean) ** 2 for s in sizes) / len(sizes))
        assert std == pytest.approx(40.0, rel=0.1)

    def test_draw_never_below_one_flit(self):
        model = FrameSizeModel(2.0, 50.0)  # pathological tail
        rng = RngStreams(3).stream("t")
        assert all(model.draw(rng) >= 1 for _ in range(200))

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigurationError):
            FrameSizeModel(0.0, 1.0)

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            FrameSizeModel(10.0, -1.0)

    def test_paper_ratio_preserved(self):
        # sigma/mean = 3333/16666 at any scale
        model = vbr_frame_model(4166.5, 833.25)
        assert model.std_flits / model.mean_flits == pytest.approx(0.2, rel=0.01)


def _stream_config(**overrides):
    defaults = dict(
        src_node=0,
        dst_node=1,
        src_vc=0,
        dst_vc=0,
        vtick=100.0,
        message_size=5,
        frame_interval=200,
        frame_model=cbr_frame_model(20.0),
        traffic_class=TrafficClass.CBR,
        phase=0,
    )
    defaults.update(overrides)
    return StreamConfig(**defaults)


class TestMediaStream:
    def test_emits_frames_at_interval(self):
        net = make_network()
        stream = MediaStream(_stream_config(), RngStreams(1).stream("s"))
        stream.start(net)
        net.run(1000)
        assert stream.frames_emitted == 5

    def test_phase_delays_first_frame(self):
        net = make_network()
        stream = MediaStream(
            _stream_config(phase=150), RngStreams(1).stream("s")
        )
        stream.start(net)
        net.run(160)
        assert stream.frames_emitted == 1
        net.run(349)
        assert stream.frames_emitted == 1
        net.run(360)
        assert stream.frames_emitted == 2

    def test_frame_packetised_into_messages(self):
        delivered = []
        net = make_network(on_message=lambda m, t: delivered.append(m))
        stream = MediaStream(_stream_config(), RngStreams(1).stream("s"))
        stream.start(net)
        net.run(400)
        net.run_until_drained()
        frame0 = [m for m in delivered if m.frame_id == 0]
        assert len(frame0) == 4  # 20 flits / 5-flit messages
        assert all(m.frame_messages == 4 for m in frame0)
        assert all(m.stream_id == stream.stream_id for m in frame0)

    def test_last_message_lands_at_interval_boundary(self):
        net = make_network()
        injected = []
        original = net.schedule_message

        def spy(time, msg):
            injected.append((time, msg))
            original(time, msg)

        net.schedule_message = spy
        stream = MediaStream(_stream_config(), RngStreams(1).stream("s"))
        stream.start(net)
        net.run(201)
        first_frame = [t for t, m in injected if m.frame_id == 0]
        assert max(first_frame) == 200  # aligned to frame_start + interval

    def test_rate_fraction(self):
        stream = MediaStream(_stream_config(), RngStreams(1).stream("s"))
        assert stream.rate_fraction == pytest.approx(20.0 / 200.0)

    def test_vbr_stream_uses_model(self):
        net = make_network()
        config = _stream_config(
            frame_model=vbr_frame_model(20.0, 5.0),
            traffic_class=TrafficClass.VBR,
        )
        stream = MediaStream(config, RngStreams(1).stream("s"))
        stream.start(net)
        net.run(2000)
        assert stream.frames_emitted == 10

    def test_rejects_best_effort_class(self):
        with pytest.raises(ConfigurationError):
            _stream_config(traffic_class=TrafficClass.BEST_EFFORT)

    def test_rejects_bad_phase(self):
        with pytest.raises(ConfigurationError):
            _stream_config(phase=500)

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            _stream_config(frame_interval=0)


def _be_config(**overrides):
    defaults = dict(
        src_node=0,
        dst_nodes=[1, 2, 3],
        vcs=[0, 1],
        message_size=4,
        rate_fraction=0.2,
        process="deterministic",
        phase=0,
    )
    defaults.update(overrides)
    return BestEffortConfig(**defaults)


class TestBestEffortSource:
    def test_constant_rate(self):
        net = make_network()
        source = BestEffortSource(_be_config(), RngStreams(1).stream("be"))
        source.start(net)
        net.run(2000)
        # 0.2 flits/cycle / 4-flit messages = 1 message per 20 cycles
        assert source.messages_emitted == pytest.approx(100, abs=2)

    def test_mean_interval(self):
        assert _be_config().mean_interval == pytest.approx(20.0)

    def test_messages_are_best_effort(self):
        delivered = []
        net = make_network(on_message=lambda m, t: delivered.append(m))
        source = BestEffortSource(_be_config(), RngStreams(1).stream("be"))
        source.start(net)
        net.run(200)
        net.run_until_drained()
        assert delivered
        for msg in delivered:
            assert msg.traffic_class == TrafficClass.BEST_EFFORT
            assert msg.dst_node in (1, 2, 3)
            assert msg.src_vc in (0, 1)

    def test_poisson_rate_matches_deterministic(self):
        net = make_network()
        source = BestEffortSource(
            _be_config(process="poisson"), RngStreams(1).stream("be")
        )
        source.start(net)
        net.run(10_000)
        assert source.messages_emitted == pytest.approx(500, rel=0.15)

    def test_destinations_cover_all_nodes(self):
        net = make_network()
        seen = set()
        source = BestEffortSource(_be_config(), RngStreams(1).stream("be"))
        original = net.inject_now

        def spy(msg):
            seen.add(msg.dst_node)
            original(msg)

        net.inject_now = spy
        source.start(net)
        net.run(2000)
        assert seen == {1, 2, 3}

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dst_nodes=[]),
            dict(vcs=[]),
            dict(message_size=0),
            dict(rate_fraction=0.0),
            dict(rate_fraction=1.5),
            dict(process="burst"),
            dict(phase=-1),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            _be_config(**kwargs)

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_mean_interval_matches_rate(self, rate):
        config = _be_config(rate_fraction=rate)
        assert config.mean_interval == pytest.approx(4.0 / rate)
