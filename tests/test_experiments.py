"""Experiment configurations and runners."""

import pytest

from repro.core.schedulers import SchedulingPolicy
from repro.errors import ConfigurationError
from repro.experiments.config import (
    FatMeshExperiment,
    PCSExperiment,
    SingleSwitchExperiment,
)
from repro.experiments.runner import simulate_fat_mesh, simulate_single_switch

from conftest import TINY


class TestExperimentConfig:
    def test_table1_defaults(self):
        exp = SingleSwitchExperiment()
        assert exp.num_ports == 8
        assert exp.vcs_per_pc == 16
        assert exp.bandwidth_mbps == 400.0
        assert exp.flit_size_bits == 32
        assert exp.message_size == 20
        assert exp.scheduler == SchedulingPolicy.VIRTUAL_CLOCK

    def test_router_config_partitions_by_mix(self):
        exp = SingleSwitchExperiment(mix=(80, 20), vcs_per_pc=16)
        config = exp.router_config(8)
        assert config.rt_vc_count == 13

    def test_warmup_and_total_cycles(self):
        exp = SingleSwitchExperiment(
            scale=20.0, warmup_frames=2, measure_frames=3
        )
        interval = exp.workload_config().frame_interval_cycles
        assert exp.warmup_cycles == 2 * interval
        assert exp.total_cycles == 5 * interval

    def test_timebase_reports_33ms_for_one_interval(self):
        exp = SingleSwitchExperiment(scale=20.0)
        interval = exp.workload_config().frame_interval_cycles
        assert exp.timebase.report_ms(interval) == pytest.approx(33.0, rel=0.01)

    def test_rejects_empty_horizon(self):
        with pytest.raises(ConfigurationError):
            SingleSwitchExperiment(warmup_frames=0)

    def test_rejects_malformed_mix(self):
        with pytest.raises(ConfigurationError):
            SingleSwitchExperiment(mix=(80, 10, 10))

    def test_pcs_defaults_match_section_56(self):
        exp = PCSExperiment()
        assert exp.bandwidth_mbps == 100.0
        assert exp.vcs_per_pc == 24
        assert exp.mix == (100.0, 0.0)

    def test_pcs_rejects_bad_retries(self):
        with pytest.raises(ConfigurationError):
            PCSExperiment(max_retries=-1)

    def test_fat_mesh_defaults(self):
        exp = FatMeshExperiment()
        assert (exp.rows, exp.cols) == (2, 2)
        assert exp.hosts_per_router == 4
        assert exp.fat_width == 2


class TestRunners:
    def test_single_switch_run_shape(self, tiny_run):
        metrics = tiny_run.metrics
        assert metrics.frames_delivered > 0
        assert metrics.interval_count > 0
        assert metrics.be_message_count > 0
        assert tiny_run.flits_injected >= tiny_run.flits_ejected
        assert tiny_run.cycles_run == tiny_run.experiment.total_cycles

    def test_tiny_run_is_jitter_free_at_low_load(self, tiny_run):
        assert tiny_run.metrics.d == pytest.approx(33.0, abs=1.0)
        assert tiny_run.metrics.sigma_d < 2.0

    def test_achieved_load_close_to_offered(self, tiny_run):
        assert tiny_run.achieved_load == pytest.approx(0.6, abs=0.05)

    def test_same_seed_reproduces_exactly(self):
        exp = SingleSwitchExperiment(load=0.4, mix=(50, 50), **TINY)
        a = simulate_single_switch(exp)
        b = simulate_single_switch(exp)
        assert a.metrics == b.metrics
        assert a.flits_injected == b.flits_injected

    def test_different_seed_changes_details(self):
        base = dict(TINY)
        a = simulate_single_switch(
            SingleSwitchExperiment(load=0.4, mix=(50, 50), **base)
        )
        base["seed"] = 99
        b = simulate_single_switch(
            SingleSwitchExperiment(load=0.4, mix=(50, 50), **base)
        )
        assert a.flits_injected != b.flits_injected or a.metrics != b.metrics

    def test_fat_mesh_runner(self):
        exp = FatMeshExperiment(load=0.4, mix=(60, 40), **TINY)
        result = simulate_fat_mesh(exp)
        assert result.metrics.frames_delivered > 0
        assert result.metrics.d == pytest.approx(33.0, abs=2.0)

    def test_fat_mesh_uses_16_hosts(self):
        exp = FatMeshExperiment(load=0.3, mix=(100, 0), **TINY)
        result = simulate_fat_mesh(exp)
        # 16 hosts x streams/node
        assert len(result.workload.streams) == 16 * result.workload.streams_per_node
