"""The activation scheduler and the active-set/legacy golden runs."""

import dataclasses

import pytest

from repro.errors import DeadlockError
from repro.experiments.config import FatMeshExperiment, SingleSwitchExperiment
from repro.experiments.runner import simulate_fat_mesh, simulate_single_switch
from repro.faults import FaultPlan, RecoveryConfig
from repro.sim.activation import ActivationScheduler

TINY = dict(scale=100.0, warmup_frames=1, measure_frames=2, seed=7)


class TestActivationScheduler:
    def test_activate_orders_and_dedups(self):
        sched = ActivationScheduler()
        sched.activate(3)
        sched.activate(1)
        sched.activate(3)
        assert list(sched.due(0)) == [1, 3]
        # the persistent set survives across cycles
        assert list(sched.due(5)) == [1, 3]

    def test_deactivate_is_idempotent(self):
        sched = ActivationScheduler()
        sched.activate(2)
        sched.deactivate(2)
        sched.deactivate(2)
        sched.deactivate(9)  # never activated
        assert list(sched.due(0)) == []

    def test_wake_fires_once_at_its_time(self):
        sched = ActivationScheduler()
        sched.wake_at(4, 10)
        assert list(sched.due(9)) == []
        assert list(sched.due(10)) == [4]
        # a wake is one-shot: consumed by the due() that returns it
        assert list(sched.due(11)) == []

    def test_earlier_wake_supersedes_later(self):
        sched = ActivationScheduler()
        sched.wake_at(1, 20)
        sched.wake_at(1, 5)
        assert sched.next_time() == 5
        assert list(sched.due(5)) == [1]
        # the stale heap entry for cycle 20 must not resurface
        assert list(sched.due(20)) == []

    def test_later_wake_request_is_ignored_while_armed(self):
        sched = ActivationScheduler()
        sched.wake_at(1, 5)
        sched.wake_at(1, 20)  # already armed earlier; no-op
        assert sched.next_time() == 5
        assert list(sched.due(5)) == [1]
        assert sched.next_time() is None

    def test_due_merges_active_and_expired_wakes_sorted(self):
        sched = ActivationScheduler()
        sched.activate(7)
        sched.activate(2)
        sched.wake_at(5, 3)
        sched.wake_at(9, 4)
        assert list(sched.due(3)) == [2, 5, 7]
        assert list(sched.due(4)) == [2, 7, 9]

    def test_next_time_skips_stale_entries(self):
        sched = ActivationScheduler()
        sched.wake_at(1, 30)
        sched.wake_at(1, 10)
        assert sched.next_time() == 10
        list(sched.due(10))
        assert sched.next_time() is None

    def test_drain_active_returns_sorted_and_clears(self):
        sched = ActivationScheduler()
        for cid in (5, 0, 3):
            sched.activate(cid)
        assert sched.drain_active() == [0, 3, 5]
        assert list(sched.due(0)) == []
        assert sched.drain_active() == []

    def test_wakes_survive_drain_active(self):
        sched = ActivationScheduler()
        sched.activate(1)
        sched.wake_at(2, 8)
        sched.drain_active()
        assert sched.next_time() == 8
        assert list(sched.due(8)) == [2]


def _metrics(result):
    return dataclasses.asdict(result.metrics)


class TestGoldenRuns:
    """Active-set loop vs REPRO_LEGACY_LOOP=1, bit-identical."""

    @pytest.mark.parametrize("load", [0.6, 0.9])
    def test_single_switch_matches_legacy(self, monkeypatch, load):
        experiment = SingleSwitchExperiment(load=load, mix=(80, 20), **TINY)
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        active = simulate_single_switch(experiment)
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        legacy = simulate_single_switch(experiment)
        assert _metrics(active) == _metrics(legacy)

    def test_fat_mesh_with_faults_matches_legacy(self, monkeypatch):
        """Faults + recovery + watchdog exercise every wake path."""
        experiment = FatMeshExperiment(
            load=0.7,
            mix=(80, 20),
            faults=FaultPlan(flit_loss_prob=0.01),
            recovery=RecoveryConfig(timeout=2048, max_retries=4),
            watchdog_window=200_000,
            **TINY,
        )
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        active = simulate_fat_mesh(experiment)
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        legacy = simulate_fat_mesh(experiment)
        assert _metrics(active) == _metrics(legacy)
        assert active.fault_stats == legacy.fault_stats

    def test_watchdog_fires_at_identical_cycle(self, monkeypatch):
        """A too-tight watchdog must trip both loops at the same cycle."""
        experiment = SingleSwitchExperiment(
            load=0.8, mix=(80, 20), watchdog_window=1, **TINY
        )
        monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        with pytest.raises(DeadlockError) as active_err:
            simulate_single_switch(experiment)
        monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        with pytest.raises(DeadlockError) as legacy_err:
            simulate_single_switch(experiment)
        active_line = str(active_err.value).splitlines()[0]
        legacy_line = str(legacy_err.value).splitlines()[0]
        assert active_line == legacy_line
