"""Fault injection, recovery transport, and the progress watchdog."""

import dataclasses
import json

import pytest

from conftest import TINY, make_message, make_network

from repro.errors import DeadlockError, FaultConfigError
from repro.experiments.config import FatMeshExperiment, SingleSwitchExperiment
from repro.experiments.runner import simulate_fat_mesh, simulate_single_switch
from repro.faults import (
    FATE_CORRUPT,
    FATE_LOST,
    FATE_OK,
    EndToEndTransport,
    FaultPlan,
    LinkDownWindow,
    LinkFaultState,
    RecoveryConfig,
    install_faults,
    install_recovery,
)
from repro.network.link import Link
from repro.sim.rng import RngStreams


class _Rng:
    """Scripted RNG: returns a preset sequence of draws."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


class _StubNetwork:
    """Accounting sink standing in for a Network in link-level tests."""

    def __init__(self):
        self.lost = 0
        self.corrupted = 0
        self.transport = None

    def _flit_lost(self, count):
        self.lost += count

    def _flit_corrupted(self, count):
        self.corrupted += count


class _CreditSink:
    def __init__(self):
        self.credits = 0


class _StubRouter:
    """Router stand-in exposing input VCs with credit sinks."""

    def __init__(self, ports=1, vcs=4):
        self.accepted = []
        self.inputs = [
            [type("VC", (), {"credit_sink": _CreditSink()})() for _ in range(vcs)]
            for _ in range(ports)
        ]

    def accept_flit(self, clock, port, vc_index, msg, flit_index):
        self.accepted.append((clock, port, vc_index, msg.msg_id, flit_index))


def _state(link_label="l", loss=0.0, corrupt=0.0, windows=(), rng=None, net=None):
    return LinkFaultState(
        label=link_label,
        loss_prob=loss,
        corrupt_prob=corrupt,
        windows=tuple(windows),
        rng=rng,
        network=net or _StubNetwork(),
    )


class TestFaultPlanValidation:
    def test_zero_plan_is_zero(self):
        assert FaultPlan().is_zero
        assert not FaultPlan(flit_loss_prob=0.1).is_zero
        assert not FaultPlan(down_windows=(LinkDownWindow("x"),)).is_zero
        assert not FaultPlan(port_failures=((0, 1),)).is_zero

    @pytest.mark.parametrize("prob", [-0.1, 1.5])
    def test_probabilities_must_be_in_unit_interval(self, prob):
        with pytest.raises(FaultConfigError):
            FaultPlan(flit_loss_prob=prob)
        with pytest.raises(FaultConfigError):
            FaultPlan(flit_corrupt_prob=prob)

    def test_links_pattern_must_be_nonempty(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(links="")

    def test_down_window_validation(self):
        with pytest.raises(FaultConfigError):
            LinkDownWindow("")
        with pytest.raises(FaultConfigError):
            LinkDownWindow("l", start=-1)
        with pytest.raises(FaultConfigError):
            LinkDownWindow("l", start=10, end=10)

    def test_down_window_activity(self):
        window = LinkDownWindow("l", start=5, end=10)
        assert not window.active(4)
        assert window.active(5)
        assert window.active(9)
        assert not window.active(10)
        forever = LinkDownWindow("l", start=3)
        assert forever.active(1_000_000)

    def test_recovery_config_validation(self):
        with pytest.raises(FaultConfigError):
            RecoveryConfig(timeout=0)
        with pytest.raises(FaultConfigError):
            RecoveryConfig(max_retries=-1)
        with pytest.raises(FaultConfigError):
            RecoveryConfig(backoff_base=0)
        with pytest.raises(FaultConfigError):
            RecoveryConfig(backoff_base=100, backoff_cap=50)


class TestInstallValidation:
    def test_port_failure_unknown_router(self):
        net = make_network()
        with pytest.raises(FaultConfigError):
            install_faults(
                net, FaultPlan(port_failures=((99, 0),)), RngStreams(1)
            )

    def test_port_failure_unknown_port(self):
        net = make_network(ports=4)
        with pytest.raises(FaultConfigError):
            install_faults(
                net, FaultPlan(port_failures=((0, 17),)), RngStreams(1)
            )

    def test_down_window_must_match_a_link(self):
        net = make_network()
        plan = FaultPlan(down_windows=(LinkDownWindow("no-such-link"),))
        with pytest.raises(FaultConfigError):
            install_faults(net, plan, RngStreams(1))

    def test_zero_plan_installs_no_link_state(self):
        net = make_network()
        injector = install_faults(net, FaultPlan(), RngStreams(1))
        assert injector.faulted_links == []
        assert all(link.faults is None for link in net.links)
        assert net.faults_active == []

    def test_probabilistic_plan_covers_matching_links(self):
        net = make_network()
        plan = FaultPlan(flit_loss_prob=0.01, links="host0:*")
        injector = install_faults(net, plan, RngStreams(1))
        assert injector.faulted_links == ["host0:eject", "host0:inject"]
        assert net.fault_injector is injector


class TestBrokenWormSemantics:
    def test_loss_breaks_the_rest_of_the_worm(self):
        msg = make_message(size=4)
        state = _state(loss=0.5, rng=_Rng([0.9, 0.1]))
        assert state.fate(msg, 0, down=False) == FATE_OK
        assert state.fate(msg, 1, down=False) == FATE_LOST
        # no further draws: the worm is broken, flits 2..3 must drop
        assert state.fate(msg, 2, down=False) == FATE_LOST
        assert state.fate(msg, 3, down=False) == FATE_LOST
        # tail processed: broken-worm state is garbage collected
        assert not state.broken

    def test_corrupt_draw_taints_but_delivers(self):
        msg = make_message(size=2)
        state = _state(loss=0.5, corrupt=0.5, rng=_Rng([0.9, 0.1]))
        assert state.fate(msg, 0, down=False) == FATE_CORRUPT

    def test_down_window_drops_every_flit(self):
        msg = make_message(size=3)
        state = _state(windows=[LinkDownWindow("l", 0, 100)])
        assert state.down(50)
        assert state.fate(msg, 0, down=True) == FATE_LOST

    def test_forget_clears_broken_state(self):
        msg = make_message(size=4)
        state = _state(loss=1.0, rng=_Rng([0.0]))
        state.fate(msg, 0, down=False)
        assert msg.msg_id in state.broken
        state.forget(msg)
        assert not state.broken


class TestFaultyLinkDelivery:
    def test_lost_flit_returns_credit_to_sender(self):
        router = _StubRouter()
        net = _StubNetwork()
        link = Link(dest_router=router, dest_port=0, latency=1, label="l")
        link.faults = _state(
            windows=[LinkDownWindow("l", 0, None)], net=net
        )
        msg = make_message(size=2)
        link.send(0, msg, 0, vc_index=3)
        assert link.deliver_due(1) == 0
        assert router.accepted == []
        assert router.inputs[0][3].credit_sink.credits == 1
        assert net.lost == 1

    def test_corrupt_flit_delivers_and_taints(self):
        router = _StubRouter()
        net = _StubNetwork()
        link = Link(dest_router=router, dest_port=0, latency=1, label="l")
        link.faults = _state(corrupt=1.0, rng=_Rng([0.0, 0.0]), net=net)
        msg = make_message(size=1)
        link.send(0, msg, 0, vc_index=0)
        assert link.deliver_due(1) == 1
        assert msg.corrupted
        assert net.corrupted == 1
        assert len(router.accepted) == 1

    def test_is_available_follows_down_windows(self):
        link = Link(sink=object(), label="l")
        assert link.is_available(0)
        link.faults = _state(windows=[LinkDownWindow("l", 10, 20)])
        assert link.is_available(9)
        assert not link.is_available(10)
        assert link.is_available(20)

    def test_purge_forgets_broken_worm_state(self):
        link = Link(sink=object(), latency=1, label="l")
        state = _state(loss=1.0, rng=_Rng([0.0]))
        link.faults = state
        msg = make_message(size=3)
        state.fate(msg, 0, down=False)
        assert state.broken
        link.purge_message(msg)
        assert not state.broken


class TestZeroFaultDeterminism:
    def test_zero_plan_is_bit_identical_to_no_plan(self):
        """The determinism regression the fault substreams guarantee."""
        base = SingleSwitchExperiment(load=0.6, mix=(80, 20), **TINY)
        with_plan = dataclasses.replace(
            base, faults=FaultPlan(), recovery=None
        )
        plain = simulate_single_switch(base)
        planned = simulate_single_switch(with_plan)
        assert json.dumps(
            dataclasses.asdict(plain.metrics), sort_keys=True
        ) == json.dumps(dataclasses.asdict(planned.metrics), sort_keys=True)
        assert plain.flits_injected == planned.flits_injected
        assert plain.flits_ejected == planned.flits_ejected
        assert plain.fault_stats is None
        assert planned.fault_stats is not None
        assert planned.fault_stats["flits_lost"] == 0


class TestFaultedRuns:
    def test_loss_accounting_and_conservation(self):
        experiment = SingleSwitchExperiment(
            load=0.5,
            mix=(80, 20),
            faults=FaultPlan(flit_loss_prob=0.02),
            **TINY,
        )
        result = simulate_single_switch(experiment)
        stats = result.fault_stats
        assert stats["flits_lost"] > 0
        # conservation was audited inside the runner (check_conservation)
        assert result.flits_ejected < result.flits_injected

    def test_corruption_detected_by_checksum(self):
        experiment = SingleSwitchExperiment(
            load=0.5,
            mix=(80, 20),
            faults=FaultPlan(flit_corrupt_prob=0.005),
            recovery=RecoveryConfig(timeout=50_000),
            **TINY,
        )
        result = simulate_single_switch(experiment)
        stats = result.fault_stats
        assert stats["flits_corrupted"] > 0
        assert stats["corrupt_detected"] > 0
        assert stats["retransmissions"] > 0

    def test_corruption_without_checksum_still_delivers(self):
        experiment = SingleSwitchExperiment(
            load=0.5,
            mix=(80, 20),
            faults=FaultPlan(flit_corrupt_prob=0.005),
            **TINY,
        )
        result = simulate_single_switch(experiment)
        assert result.fault_stats["flits_corrupted"] > 0
        assert result.metrics.frames_delivered > 0

    def test_port_failure_routes_around_dead_fat_link(self):
        """The fat-link selector must never pick a faulted channel."""
        experiment = FatMeshExperiment(
            load=0.5,
            mix=(80, 20),
            faults=FaultPlan(port_failures=((0, 4),)),
            **TINY,
        )
        result = simulate_fat_mesh(experiment)
        # the dead port's link drops every flit sent to it, so zero
        # lost flits proves the selector routed around it entirely
        assert result.fault_stats["flits_lost"] == 0
        assert "ch:0.4->" in result.fault_stats["faulted_links"][0]
        assert result.metrics.frames_delivered > 0

    def test_recovery_delivers_despite_one_percent_loss(self):
        """Acceptance: >=99% of messages delivered at 1% flit loss."""
        base = FatMeshExperiment(load=0.5, mix=(80, 20), **TINY)
        interval = base.workload_config().frame_interval_cycles
        experiment = dataclasses.replace(
            base,
            faults=FaultPlan(flit_loss_prob=0.01),
            recovery=RecoveryConfig(
                timeout=max(512, interval // 2),
                max_retries=6,
                backoff_base=max(16, interval // 256),
                backoff_cap=max(64, interval // 16),
            ),
            watchdog_window=2 * interval,
        )
        result = simulate_fat_mesh(experiment)
        stats = result.fault_stats
        assert stats["flits_lost"] > 0
        assert stats["loss_kills"] > 0
        assert stats["retransmissions"] > 0
        assert stats["delivered_fraction"] >= 0.99
        # frame delivery keeps working through the faults: the mean
        # inter-frame delivery interval stays near the 33 ms epoch
        assert 20.0 < result.metrics.mean_delivery_interval_ms < 50.0


class TestTransportMachinery:
    class _SchedNet:
        """Network stand-in recording scheduled calls and kills."""

        def __init__(self):
            self.clock = 0
            self.transport = None
            self.scheduled = []
            self.killed = []
            self.injected = []

        def schedule_call(self, time, fn):
            self.scheduled.append((time, fn))

        def kill_message(self, msg):
            msg.killed = True
            self.killed.append(msg)

        def inject_now(self, msg):
            self.injected.append(msg)
            self.transport.on_inject(msg)

    def _transport(self, **kwargs):
        net = self._SchedNet()
        config = RecoveryConfig(
            timeout=100, max_retries=2, backoff_base=8, backoff_cap=16, **kwargs
        )
        transport = EndToEndTransport(net, config)
        net.transport = transport
        return net, transport

    def test_timeout_arms_at_first_flit_not_injection(self):
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        assert transport.stats.originals == 1
        assert net.scheduled == []  # not armed yet: still in the NI queue
        transport.on_start(msg, clock=40)
        assert [time for time, _ in net.scheduled] == [140]

    def test_timeout_kills_and_retransmits_with_backoff(self):
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        transport.on_start(msg, clock=0)
        _, check = net.scheduled[0]
        check()  # timeout fires: msg neither delivered nor killed
        assert transport.stats.timeouts == 1
        assert net.killed == [msg]
        # first retransmission: backoff_base << 0 = 8 cycles out
        assert net.scheduled[-1][0] == net.clock + 8
        net.scheduled[-1][1]()  # deliver the clone to the NI
        clone = net.injected[0]
        assert clone.msg_id != msg.msg_id
        assert clone.frame_id == msg.frame_id
        assert transport.stats.originals == 1  # clone is not a new original

    def test_backoff_doubles_then_caps_then_abandons(self):
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        delays = []
        for _ in range(transport.config.max_retries):
            transport.on_loss(msg)
            time, fn = net.scheduled[-1]
            delays.append(time - net.clock)
            fn()
            msg = net.injected[-1]
        assert delays == [8, 16]  # 8 << 1 = 16 = cap
        transport.on_loss(msg)  # retries exhausted
        assert transport.stats.abandoned == 1
        assert transport.stats.delivered_fraction == 0.0

    def test_delivered_message_ignores_late_timeout(self):
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        transport.on_start(msg, clock=0)
        msg.deliver_time = 50
        transport.on_delivered(msg)
        assert transport.stats.delivered == 1
        net.scheduled[0][1]()  # the stale timeout must be a no-op
        assert transport.stats.timeouts == 0
        assert net.killed == []

    def test_killed_by_other_mechanism_is_left_alone(self):
        # preemption kills and retransmits on its own; the transport
        # must not double-retransmit
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        transport.on_start(msg, clock=0)
        msg.killed = True
        net.scheduled[0][1]()
        assert transport.stats.timeouts == 0
        assert transport.stats.retransmissions == 0

    def test_loss_kill_ignores_already_killed(self):
        net, transport = self._transport()
        msg = make_message()
        transport.on_inject(msg)
        msg.killed = True
        transport.on_loss(msg)
        assert transport.stats.loss_kills == 0


class TestWatchdog:
    def test_wedged_network_raises_deadlock_error(self):
        """Acceptance: credit starvation is detected and diagnosed."""
        net = make_network(ports=4, vcs=2, depth=4)
        net.watchdog_window = 64
        msg = make_message(src=0, dst=1, size=6, dst_vc=0)
        # wedge: a squatter owns the destination output VC forever, so
        # the message can never win arbitration for its bound VC
        squatter = make_message(src=2, dst=3)
        net.routers[0].outputs[1][0].grant(0, squatter)
        net.inject_now(msg)
        with pytest.raises(DeadlockError) as excinfo:
            net.run(100_000)
        text = str(excinfo.value)
        assert "watchdog window 64" in text
        # the dump names the stalled input VC and the squatting owner
        assert "router 0 in (0,0)" in text
        assert f"owner {squatter.msg_id}" in text

    def test_watchdog_quiet_on_healthy_run(self):
        experiment = SingleSwitchExperiment(
            load=0.6, mix=(80, 20), watchdog_window=200_000, **TINY
        )
        result = simulate_single_switch(experiment)
        assert result.metrics.frames_delivered > 0

    def test_watchdog_ignores_idle_gaps(self):
        # an empty network with a far-future injection must jump the
        # idle gap without tripping the watchdog
        net = make_network(ports=4, vcs=2)
        net.watchdog_window = 10
        msg = make_message(size=2)
        net.schedule_message(5_000, msg)
        net.run(6_000)
        assert net.flits_injected == 2

    def test_stall_report_empty_network(self):
        net = make_network()
        assert net.stall_report() == "(no occupied buffers)"

    def test_stall_report_caps_line_count(self):
        net = make_network(ports=4, vcs=2)
        for port in range(4):
            for vc in range(2):
                net.routers[0].outputs[port][vc].grant(
                    0, make_message(src=0, dst=1)
                )
        report = net.stall_report(max_lines=3)
        assert "more lines elided" in report
        assert len(report.splitlines()) == 4


class TestRecoveryInstallation:
    def test_install_recovery_wires_hooks(self):
        net = make_network()
        transport = install_recovery(net, RecoveryConfig())
        assert net.transport is transport
        for ni in net.interfaces.values():
            assert ni.on_start == transport.on_start
        for sink in net.sinks.values():
            assert sink.on_corrupt == transport.on_corrupt

    def test_checksum_disabled_leaves_sinks_alone(self):
        net = make_network()
        install_recovery(net, RecoveryConfig(checksum=False))
        for sink in net.sinks.values():
            assert sink.on_corrupt is None
