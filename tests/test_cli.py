"""Command-line interface."""

import pytest

import repro.experiments.cli as cli
from repro.experiments.figures import PROFILES, RunProfile

TINY = RunProfile("tiny", scale=80.0, warmup_frames=1, measure_frames=2)


@pytest.fixture(autouse=True)
def tiny_profile(monkeypatch):
    """Register a 'tiny' profile and shrink the default sweeps."""
    monkeypatch.setitem(PROFILES, "tiny", TINY)
    import repro.experiments.figures as figures

    monkeypatch.setattr(figures, "DEFAULT_LOADS", (0.5,))
    monkeypatch.setattr(figures, "DEFAULT_MIXES", ((80, 20),))
    import repro.experiments.tables as tables

    monkeypatch.setattr(tables, "TABLE3_LOADS", (0.5,))


class TestCli:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table3" in out

    def test_run_fig3(self, capsys):
        assert cli.main(["run", "fig3", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "virtual_clock" in out
        assert "completed in" in out

    def test_run_table3(self, capsys):
        assert cli.main(["run", "table3", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Established" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "fig99", "--profile", "tiny"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])
