"""Compiled route programs: construction counts, overlays, properties.

The tentpole contract of the route-program refactor:

* a topology compiles its program exactly once, no matter how many
  networks, forks, or sweep points reuse it;
* mask overlays are per-router and per-facade — masking a port on one
  router (or one network) never shows through anywhere else;
* the generated fat-tree/butterfly tables are full-reachability,
  up*/down*-ordered (no up edge after a down edge), and provably
  detour-free.
"""

import dataclasses

import pytest

from repro.errors import RoutingError
from repro.experiments.config import (
    ButterflyExperiment,
    FatMeshExperiment,
    FatTree3Experiment,
    SingleSwitchExperiment,
)
from repro.experiments.parallel import sweep_fingerprint
from repro.experiments.runner import _cached_topology, simulate_fat_tree3
from repro.network.topology import butterfly, fat_mesh_2x2, fat_tree3
from repro.router import routeprog
from repro.router.routeprog import RouterRouteView, compile_routes
from repro.router.routing import CompiledRouting, TableRouting


# ----------------------------------------------------------------------
# program compilation


class TestCompileRoutes:
    def test_preserves_entries_exactly(self):
        table = {
            (0, 0): (1, 2),
            (0, 1): (2, 1),
            (1, 0): (0,),
            (1, 1): (3,),
        }
        program = compile_routes(table, name="t")
        for (rid, node), ports in table.items():
            assert program.candidates(rid, node) == ports

    def test_interns_duplicate_groups(self):
        table = {(r, n): (5, 6) for r in range(8) for n in range(8)}
        program = compile_routes(table)
        assert len(program.groups) == 1
        assert program.stats()["entries"] == 64

    def test_dense_slots_for_contiguous_nodes(self):
        program = compile_routes({(0, n): (n,) for n in range(4)})
        assert program.dense
        assert program.slot_of(3) == 3
        assert program.slot_of(9) == -1

    def test_sparse_nodes_still_resolve(self):
        program = compile_routes({(0, 10): (1,), (0, 20): (2,)})
        assert not program.dense
        assert program.candidates(0, 20) == (2,)

    def test_missing_entry_raises(self):
        program = compile_routes({(0, 0): (1,)})
        with pytest.raises(RoutingError, match="no route to node 7"):
            program.candidates(0, 7)

    def test_empty_entry_rejected(self):
        with pytest.raises(RoutingError, match="empty routing entry"):
            compile_routes({(0, 0): ()})


class TestCompileOnce:
    def test_topology_build_compiles_exactly_once(self):
        before = routeprog.compile_count()
        topology = fat_tree3(k=4)
        assert routeprog.compile_count() - before == 1
        # downstream reuse never compiles again
        topology.routing.fork()
        topology.routing.fork().router_view(0)
        assert routeprog.compile_count() - before == 1

    def test_runner_cache_shares_programs_across_points(self):
        experiment = FatTree3Experiment(
            k=4,
            hosts_per_leaf=1,
            load=0.01,
            mix=(100.0, 0.0),
            vcs_per_pc=4,
            warmup_frames=1,
            measure_frames=1,
            scale=200.0,
            seed=5,
        )
        simulate_fat_tree3(experiment)  # prime the cache
        before = routeprog.compile_count()
        first = simulate_fat_tree3(experiment)
        second = simulate_fat_tree3(
            dataclasses.replace(experiment, seed=6)
        )
        assert routeprog.compile_count() == before
        assert first.flits_injected > 0
        assert second.flits_injected > 0

    def test_cached_topology_is_same_object(self):
        a = _cached_topology(fat_tree3, k=4, hosts_per_leaf=1, fat_width=1)
        b = _cached_topology(fat_tree3, k=4, hosts_per_leaf=1, fat_width=1)
        assert a is b


# ----------------------------------------------------------------------
# mask overlays


class TestMaskOverlays:
    def test_masks_are_per_router(self):
        routing = fat_tree3(k=4).routing.fork()
        routing.mask_port(0, 2)
        assert routing.router_view(0).masked_ports == {2}
        assert routing.router_view(1).masked_ports == set()
        assert routing.masked(0) == frozenset({2})
        assert routing.masked(1) == frozenset()

    def test_forks_share_program_not_masks(self):
        topology = fat_tree3(k=4)
        a = topology.routing.fork()
        b = topology.routing.fork()
        assert a.program is b.program
        a.mask_port(3, 1)
        assert b.masked(3) == frozenset()
        assert topology.routing.masked(3) == frozenset()

    def test_unmask_restores_and_counters_are_per_fork(self):
        topology = fat_mesh_2x2()
        routing = topology.routing.fork()
        view = routing.router_view(0)
        port = view.candidates(4)[0]
        routing.mask_port(0, port)
        ports, _ = view.route_adaptive(4, None)
        assert port not in ports
        assert routing.reroutes + routing.detours_taken >= 1
        routing.unmask_port(0, port)
        assert view.masked_ports == set()
        assert topology.routing.reroutes == 0

    def test_table_routing_is_compiled_routing(self):
        routing = TableRouting({(0, 0): (1,), (0, 1): (2,)})
        assert isinstance(routing, CompiledRouting)
        assert isinstance(routing.router_view(0), RouterRouteView)
        assert routing.candidates(0, 1) == (2,)


# ----------------------------------------------------------------------
# generated-table properties


def _levelled_edges(topology):
    """(src, dst) -> +1 for an up edge, -1 for a down edge."""
    levels = topology.extras["levels"]
    direction = {}
    for src, sp, dst, _dp in topology.channels:
        direction[(src, sp)] = (
            1 if levels[dst] > levels[src] else -1,
            dst,
        )
    return direction


TREE_CASES = [
    fat_tree3(k=4),
    fat_tree3(k=4, hosts_per_leaf=1, fat_width=2),
    butterfly(arity=2, levels=3),
    butterfly(arity=4, levels=2, hosts_per_leaf=3, fat_width=2),
]


@pytest.mark.parametrize(
    "topology", TREE_CASES, ids=lambda t: t.extras["generator"]
)
class TestTreeProperties:
    def test_full_reachability_over_every_candidate(self, topology):
        """Any candidate choice at any hop still reaches the destination."""
        direction = _levelled_edges(topology)
        host_rid = {node: rid for node, rid, _ in topology.hosts}
        routing = topology.routing
        for dst in topology.node_ids:
            target = host_rid[dst]
            for src in topology.node_ids:
                frontier = {host_rid[src]}
                seen = set()
                reached = host_rid[src] == target
                while frontier:
                    rid = frontier.pop()
                    if rid == target:
                        reached = True
                        continue
                    if rid in seen:
                        continue
                    seen.add(rid)
                    for port in routing.candidates(rid, dst):
                        frontier.add(direction[(rid, port)][1])
                assert reached, f"{src}->{dst} never reaches router {target}"

    def test_no_up_edge_after_down_edge(self, topology):
        """up*/down*: every routed port sequence is ups then downs."""
        direction = _levelled_edges(topology)
        host_rid = {node: rid for node, rid, _ in topology.hosts}
        routing = topology.routing
        host_ports = {
            (rid, port) for _node, rid, port in topology.hosts
        }
        for dst in topology.node_ids:
            # walk every (router, been_down) state reachable toward dst
            stack = [(host_rid[src], False) for src in topology.node_ids]
            seen = set()
            while stack:
                state = stack.pop()
                if state in seen:
                    continue
                seen.add(state)
                rid, been_down = state
                if rid == host_rid[dst]:
                    continue
                for port in routing.candidates(rid, dst):
                    if (rid, port) in host_ports:
                        continue
                    step, nxt = direction[(rid, port)]
                    assert not (been_down and step > 0), (
                        f"down->up at router {rid} toward {dst}"
                    )
                    stack.append((nxt, been_down or step < 0))

    def test_trees_have_no_detours_by_construction(self, topology):
        """Down paths are unique in a folded Clos, so the detour table
        is empty by theorem — failures are owned by mask shrink on the
        up groups plus end-to-end recovery."""
        program = topology.route_program
        assert program.detours == {}
        assert program.alt is None

    def test_every_table_int_is_a_real_group(self, topology):
        program = topology.route_program
        for row in program.primary:
            for gid in row:
                assert gid >= 0
                assert len(program.groups[gid]) >= 1


class TestScaleShapes:
    def test_1024_host_shape(self):
        topology = _cached_topology(
            fat_tree3, k=16, hosts_per_leaf=None, fat_width=1
        )
        assert topology.num_hosts == 1024
        assert topology.num_routers == 320
        assert topology.ports_per_router == 16
        stats = topology.route_program.stats()
        assert stats["table_ints"] == 320 * 1024
        assert stats["dense_nodes"]

    def test_butterfly_shape(self):
        topology = butterfly(arity=8, levels=3)
        assert topology.num_hosts == 512
        assert topology.num_routers == 192


# ----------------------------------------------------------------------
# sweep fingerprints


class TestTopologyFingerprint:
    def test_empty_at_defaults(self):
        for experiment in (
            SingleSwitchExperiment(),
            FatMeshExperiment(),
            FatTree3Experiment(),
            ButterflyExperiment(),
        ):
            assert sweep_fingerprint(experiment) == ""

    def test_off_default_shape_is_encoded(self):
        assert "k=8" in sweep_fingerprint(FatTree3Experiment(k=8))
        assert "num_ports=4" in sweep_fingerprint(
            SingleSwitchExperiment(num_ports=4)
        )
        fingerprint = sweep_fingerprint(
            ButterflyExperiment(arity=4, levels=2)
        )
        assert "arity=4" in fingerprint and "levels=2" in fingerprint

    def test_shape_parts_compose_with_mode(self):
        from repro.router.config import RoutingMode

        experiment = FatTree3Experiment(
            k=8, routing_mode=RoutingMode.ADAPTIVE
        )
        fingerprint = sweep_fingerprint(experiment)
        assert fingerprint.startswith("k=8|")
        assert "mode=adaptive" in fingerprint

    def test_distinct_shapes_get_distinct_keys(self):
        assert sweep_fingerprint(FatTree3Experiment(k=8)) != sweep_fingerprint(
            FatTree3Experiment(k=16)
        )
