"""Public API surface and error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.metrics
        import repro.network
        import repro.pcs
        import repro.router
        import repro.sim
        import repro.traffic

        for module in (
            repro.analysis,
            repro.core,
            repro.metrics,
            repro.network,
            repro.pcs,
            repro.router,
            repro.sim,
            repro.traffic,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__}.__all__ lists missing {name}"
                )

    def test_version(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3

    def test_headline_entry_points_are_callable(self):
        assert callable(repro.simulate_single_switch)
        assert callable(repro.simulate_fat_mesh)
        assert callable(repro.simulate_pcs)
        assert callable(repro.build_workload)

    def test_every_public_item_has_a_docstring(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
            elif isinstance(obj, type) and not issubclass(obj, Exception):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.RoutingError,
            errors.FlowControlError,
            errors.AdmissionError,
            errors.DeadlockError,
            errors.FaultConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_routing_and_flow_control_are_simulation_errors(self):
        assert issubclass(errors.RoutingError, errors.SimulationError)
        assert issubclass(errors.FlowControlError, errors.SimulationError)

    def test_fault_errors_slot_into_the_hierarchy(self):
        # a watchdog trip is a simulation failure; a bad fault plan is
        # a configuration mistake — both catchable at the usual levels
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.FaultConfigError, errors.ConfigurationError)

    def test_fault_api_exported_at_top_level(self):
        import repro

        for name in (
            "DeadlockError",
            "FaultConfigError",
            "FaultPlan",
            "LinkDownWindow",
            "RecoveryConfig",
            "install_faults",
            "install_recovery",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.FlowControlError("x")

    def test_library_raises_its_own_errors(self):
        from repro import LinkSpec

        with pytest.raises(errors.ReproError):
            LinkSpec(bandwidth_mbps=-1)
