"""Messages and frame packetisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.router.flit import Message, TrafficClass, messages_for_frame


def _pack(frame_flits, message_size, header_flits=0):
    return messages_for_frame(
        frame_flits=frame_flits,
        message_size=message_size,
        src_node=0,
        dst_node=1,
        vtick=100.0,
        traffic_class=TrafficClass.VBR,
        stream_id=5,
        frame_id=9,
        src_vc=2,
        dst_vc=3,
        header_flits=header_flits,
    )


class TestTrafficClass:
    def test_real_time_classes(self):
        assert TrafficClass.is_real_time(TrafficClass.VBR)
        assert TrafficClass.is_real_time(TrafficClass.CBR)
        assert not TrafficClass.is_real_time(TrafficClass.BEST_EFFORT)


class TestMessage:
    def test_basic_fields(self):
        msg = Message(0, 1, 20, 100.0, TrafficClass.VBR, src_vc=2, dst_vc=3)
        assert msg.size == 20
        assert msg.is_real_time
        assert msg.src_vc == 2 and msg.dst_vc == 3

    def test_ids_are_unique(self):
        a = Message(0, 1, 1, 1.0, TrafficClass.VBR)
        b = Message(0, 1, 1, 1.0, TrafficClass.VBR)
        assert a.msg_id != b.msg_id

    def test_header_and_tail_indexing(self):
        msg = Message(0, 1, 5, 1.0, TrafficClass.CBR)
        assert msg.is_header(0)
        assert not msg.is_header(1)
        assert msg.is_tail(4)
        assert not msg.is_tail(3)

    def test_single_flit_message_is_header_and_tail(self):
        msg = Message(0, 1, 1, 1.0, TrafficClass.VBR)
        assert msg.is_header(0) and msg.is_tail(0)

    def test_best_effort_is_not_real_time(self):
        msg = Message(0, 1, 20, 1e12, TrafficClass.BEST_EFFORT)
        assert not msg.is_real_time

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            Message(0, 1, 0, 1.0, TrafficClass.VBR)

    def test_rejects_bad_vtick(self):
        with pytest.raises(ConfigurationError):
            Message(0, 1, 5, 0.0, TrafficClass.VBR)

    def test_rejects_unknown_class(self):
        with pytest.raises(ConfigurationError):
            Message(0, 1, 5, 1.0, "abr")


class TestPacketisation:
    def test_exact_division(self):
        messages = _pack(100, 20)
        assert len(messages) == 5
        assert all(m.size == 20 for m in messages)

    def test_remainder_goes_to_last_message(self):
        messages = _pack(45, 20)
        assert [m.size for m in messages] == [20, 20, 5]

    def test_single_message_frame(self):
        messages = _pack(7, 20)
        assert len(messages) == 1
        assert messages[0].size == 7

    def test_frame_metadata_propagates(self):
        messages = _pack(45, 20)
        for msg in messages:
            assert msg.stream_id == 5
            assert msg.frame_id == 9
            assert msg.frame_messages == 3
            assert msg.src_vc == 2 and msg.dst_vc == 3

    def test_paper_example_200_messages(self):
        # 4000-flit frame, 20-flit messages -> 200 messages
        assert len(_pack(4000, 20)) == 200

    def test_header_overhead_adds_wire_flits(self):
        # 38 payload flits, 20-flit messages with 1 header flit:
        # 19 payload per message -> 2 messages of 20 wire flits each
        messages = _pack(38, 20, header_flits=1)
        assert [m.size for m in messages] == [20, 20]

    def test_header_overhead_partial_last_message(self):
        messages = _pack(20, 20, header_flits=1)
        assert [m.size for m in messages] == [20, 2]

    def test_rejects_empty_frame(self):
        with pytest.raises(ConfigurationError):
            _pack(0, 20)

    def test_rejects_header_not_smaller_than_message(self):
        with pytest.raises(ConfigurationError):
            _pack(10, 4, header_flits=4)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=64),
    )
    def test_payload_is_conserved(self, frame_flits, message_size):
        messages = _pack(frame_flits, message_size)
        assert sum(m.size for m in messages) == frame_flits
        assert all(1 <= m.size <= message_size for m in messages)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=2, max_value=64),
    )
    def test_payload_conserved_with_header(self, frame_flits, message_size):
        messages = _pack(frame_flits, message_size, header_flits=1)
        payload = sum(m.size for m in messages) - len(messages)
        assert payload == frame_flits
        assert all(m.frame_messages == len(messages) for m in messages)
