"""Report formatting."""

import math

from repro.experiments.figures import FigureData, Point
from repro.experiments.report import (
    figure_to_text,
    format_table,
    table2_to_text,
    table3_to_text,
)
from repro.experiments.tables import Table2Data, Table3Data, Table3Row
from repro.metrics.collector import RunMetrics


def _metrics(d=33.0, sigma=0.1, be=12.5):
    return RunMetrics(
        mean_delivery_interval_ms=d,
        std_delivery_interval_ms=sigma,
        frames_delivered=100,
        interval_count=90,
        be_latency_us=be,
        be_latency_us_paper_equivalent=be * 20,
        be_latency_std_us=1.0,
        be_message_count=500,
    )


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_floats_fixed_precision(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text


class TestFigureToText:
    def test_contains_series_and_points(self):
        fig = FigureData(
            figure_id="figX",
            title="demo",
            xlabel="load",
            series={"a": [Point(0.5, _metrics())]},
            notes="hello",
        )
        text = figure_to_text(fig)
        assert "figX" in text
        assert "series: a" in text
        assert "33.000" in text
        assert "note: hello" in text

    def test_optional_latency_column(self):
        fig = FigureData(
            figure_id="f",
            title="t",
            xlabel="x",
            series={"a": [Point(0.5, _metrics(be=77.0))]},
        )
        assert "77.000" in figure_to_text(fig, show_be_latency=True)
        assert "77.000" not in figure_to_text(fig, show_be_latency=False)

    def test_rows_flatten(self):
        fig = FigureData(
            figure_id="f",
            title="t",
            xlabel="x",
            series={"a": [Point(0.5, _metrics())], "b": [Point(0.6, _metrics())]},
        )
        rows = fig.rows()
        assert len(rows) == 2
        assert rows[0][0] == "a"


class TestTableText:
    def test_table2_layout(self):
        data = Table2Data(
            loads=[0.6, 0.9],
            mixes=[(80, 20)],
            latency_us={((80, 20), 0.6): 10.3, ((80, 20), 0.9): 5000.0},
        )
        text = table2_to_text(data)
        assert "80:20" in text
        assert "10.3" in text
        assert "Sat." in text  # saturated cell

    def test_table2_nan_cell(self):
        data = Table2Data(
            loads=[0.6],
            mixes=[(80, 20)],
            latency_us={((80, 20), 0.6): float("nan")},
        )
        assert "-" in table2_to_text(data)

    def test_table3_sorted_by_load_descending(self):
        data = Table3Data(
            rows=[
                Table3Row(0.4, 10, 8, 2, 8, 0),
                Table3Row(0.9, 100, 50, 50, 60, 5),
            ]
        )
        text = table3_to_text(data)
        first_data_line = text.splitlines()[3]
        assert first_data_line.strip().startswith("0.9")
