"""Unit tests for the observability layer (``repro.obs``).

Sinks, the event schema, the Chrome-trace exporter, the profiler, and
the :class:`InvariantChecker`'s per-kind checks on synthetic event
sequences.  Integration against real traffic lives in
``test_obs_invariants.py``; the zero-overhead and golden-trace pins in
``test_obs_trace.py``.
"""

import json

import pytest

from conftest import deliver_all, make_message, make_network

from repro.errors import ConfigurationError, InvariantViolation
from repro.obs import (
    ALL_EVENTS,
    EVENT_SCHEMA,
    CountingSink,
    InvariantChecker,
    JsonlTraceSink,
    LoopProfiler,
    MultiSink,
    RingBufferSink,
    TraceSpec,
    check_event_names,
    chrome_trace,
    counts_by_kind,
    install_tracing,
    uninstall_tracing,
    validate_event,
    write_chrome_trace,
)


class TestEventSchema:
    def test_every_kind_has_fields(self):
        for kind in ALL_EVENTS:
            assert EVENT_SCHEMA[kind], kind

    def test_valid_record_passes(self):
        validate_event(
            {
                "kind": "flit_inject",
                "cycle": 3,
                "node": 0,
                "vc": 1,
                "msg": 7,
                "flit": 0,
                "size": 5,
                "cls": "vbr",
            }
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvariantViolation, match="unknown"):
            validate_event({"kind": "warp", "cycle": 0})

    def test_negative_cycle_rejected(self):
        with pytest.raises(InvariantViolation, match="cycle"):
            validate_event({"kind": "purge", "cycle": -1})

    def test_bool_cycle_rejected(self):
        with pytest.raises(InvariantViolation, match="cycle"):
            validate_event({"kind": "purge", "cycle": True})

    def test_missing_field_rejected(self):
        with pytest.raises(InvariantViolation, match="missing"):
            validate_event(
                {"kind": "purge", "cycle": 0, "msg": 1, "dropped": 2}
            )

    def test_extra_field_rejected(self):
        with pytest.raises(InvariantViolation, match="unexpected"):
            validate_event(
                {
                    "kind": "purge",
                    "cycle": 0,
                    "msg": 1,
                    "dropped": 2,
                    "ni": 0,
                    "extra": 1,
                }
            )

    def test_wrong_type_rejected(self):
        with pytest.raises(InvariantViolation, match="expected"):
            validate_event(
                {"kind": "purge", "cycle": 0, "msg": "one", "dropped": 2, "ni": 0}
            )

    def test_bool_not_accepted_as_int(self):
        # bool is an int subclass; the schema must still reject it where
        # an int is meant, or a buggy emitter would slip through
        with pytest.raises(InvariantViolation, match="bool"):
            validate_event(
                {"kind": "purge", "cycle": 0, "msg": True, "dropped": 2, "ni": 0}
            )

    def test_check_event_names_accepts_known(self):
        assert check_event_names(["sched", "xbar"]) == ("sched", "xbar")

    def test_check_event_names_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="warp"):
            check_event_names(["sched", "warp"])

    def test_trace_spec_validates_events(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(path="x.jsonl", events=("nonsense",))

    def test_trace_spec_defaults(self):
        spec = TraceSpec()
        assert spec.path is None
        assert spec.events is None
        assert spec.chrome_path is None
        assert spec.check is False


class TestSinks:
    def test_jsonl_sink_writes_sorted_compact_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.on_event("purge", 9, {"msg": 1, "dropped": 2, "ni": 0})
        sink.close()
        line = path.read_text().strip()
        assert line == '{"cycle":9,"dropped":2,"kind":"purge","msg":1,"ni":0}'
        assert sink.records_written == 1

    def test_jsonl_sink_filters_kinds(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, events=("purge",))
        sink.on_event("sched", 1, {})
        sink.on_event("purge", 2, {"msg": 1, "dropped": 0, "ni": 0})
        sink.close()
        kinds = [json.loads(l)["kind"] for l in path.read_text().splitlines()]
        assert kinds == ["purge"]

    def test_jsonl_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_ring_buffer_keeps_last_records(self):
        sink = RingBufferSink(capacity=2)
        for cycle in range(5):
            sink.on_event("sched", cycle, {"n": cycle})
        assert [cycle for _, cycle, _ in sink.records] == [3, 4]

    def test_ring_buffer_copies_fields(self):
        sink = RingBufferSink()
        fields = {"n": 1}
        sink.on_event("sched", 0, fields)
        fields["n"] = 2
        assert sink.records[0][2] == {"n": 1}

    def test_counting_sink(self):
        sink = CountingSink()
        sink.on_event("sched", 0, {})
        sink.on_event("sched", 1, {})
        sink.on_event("xbar", 1, {})
        assert sink.counts == {"sched": 2, "xbar": 1}
        assert sink.total == 3

    def test_multi_sink_fans_out_and_closes(self, tmp_path):
        counter = CountingSink()
        jsonl = JsonlTraceSink(tmp_path / "t.jsonl")
        multi = MultiSink([counter, jsonl])
        multi.on_event("purge", 0, {"msg": 1, "dropped": 0, "ni": 0})
        multi.close()
        assert counter.total == 1
        assert jsonl._file.closed

    def test_counts_by_kind(self):
        records = [("sched", 0, {}), ("sched", 1, {}), ("xbar", 0, {})]
        assert counts_by_kind(records) == {"sched": 2, "xbar": 1}


class TestInstallUninstall:
    def test_install_points_every_component_at_the_sink(self):
        sink = CountingSink()
        network = make_network(trace_sink=sink)
        assert network.trace is sink
        assert all(r.trace is sink for r in network.routers)
        assert all(l.trace is sink for l in network.links)
        assert all(ni.trace is sink for ni in network.interfaces.values())
        assert all(s.trace is sink for s in network.sinks.values())

    def test_uninstall_restores_zero_overhead(self):
        network = make_network(trace_sink=CountingSink())
        uninstall_tracing(network)
        assert network.trace is None
        assert all(r.trace is None for r in network.routers)
        assert all(l.trace is None for l in network.links)

    def test_untraced_network_has_no_sink(self):
        network = make_network()
        assert network.trace is None
        assert all(l.trace is None for l in network.links)

    def test_traced_delivery_emits_lifecycle(self):
        sink = CountingSink()
        network = make_network(trace_sink=sink)
        network.inject_now(make_message(size=4))
        deliver_all(network)
        assert sink.counts["flit_inject"] == 4
        assert sink.counts["flit_eject"] == 4
        assert sink.counts["route"] == 1
        assert sink.counts["vc_alloc"] == 1
        assert sink.counts["vc_release"] == 1
        assert sink.counts["xbar"] == 4
        # host-in and host-out wires both carry every flit
        assert sink.counts["link_tx"] == 8

    def test_emitted_events_fit_the_schema(self):
        ring = RingBufferSink()
        network = make_network(trace_sink=ring)
        network.inject_now(make_message(size=4))
        deliver_all(network)
        for kind, cycle, fields in ring.records:
            record = {"kind": kind, "cycle": cycle}
            record.update(fields)
            validate_event(record)


class TestChromeTrace:
    def _lifecycle_records(self):
        ring = RingBufferSink()
        network = make_network(trace_sink=ring)
        network.inject_now(make_message(size=4))
        deliver_all(network)
        return ring.records

    def test_complete_worm_becomes_a_slice(self):
        trace = chrome_trace(self._lifecycle_records())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["dur"] >= 1

    def test_every_record_becomes_an_instant(self):
        records = self._lifecycle_records()
        trace = chrome_trace(records)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(records)

    def test_metadata_names_processes(self):
        trace = chrome_trace(self._lifecycle_records())
        names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        ]
        assert "routers" in names
        assert "links" in names

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, self._lifecycle_records())
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count


class TestLoopProfiler:
    def test_summary_keys_and_total(self):
        profiler = LoopProfiler()
        profiler.events_s = 1.0
        profiler.links_s = 2.0
        profiler.nis_s = 3.0
        profiler.routers_s = 4.0
        profiler.cycles = 7
        summary = profiler.summary()
        assert summary["loop_total_s"] == pytest.approx(10.0)
        assert summary["loop_cycles_executed"] == 7.0

    @pytest.mark.parametrize("legacy", [False, True])
    def test_profiled_run_accumulates_time(self, monkeypatch, legacy):
        if legacy:
            monkeypatch.setenv("REPRO_LEGACY_LOOP", "1")
        else:
            monkeypatch.delenv("REPRO_LEGACY_LOOP", raising=False)
        network = make_network()
        profiler = LoopProfiler()
        network.profiler = profiler
        network.inject_now(make_message(size=4))
        deliver_all(network)
        assert profiler.cycles > 0
        assert profiler.total_s > 0.0


def _feed(checker, events):
    for kind, cycle, fields in events:
        checker.on_event(kind, cycle, fields)


def _inject(msg, flit, size=3, node=0):
    fields = {
        "node": node,
        "vc": 0,
        "msg": msg,
        "flit": flit,
        "size": size,
        "cls": "vbr",
    }
    return ("flit_inject", 0, fields)


def _eject(msg, flit, tail=False, node=1):
    return ("flit_eject", 5, {"node": node, "msg": msg, "flit": flit, "tail": tail})


class TestInvariantCheckerSynthetic:
    def test_clean_lifecycle_passes(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        _feed(checker, [_eject(1, 0), _eject(1, 1), _eject(1, 2, tail=True)])
        checker.finish()

    def test_injection_gap_raises(self):
        checker = InvariantChecker()
        checker.on_event(*_inject(1, 0))
        with pytest.raises(InvariantViolation, match="expected 1"):
            checker.on_event(*_inject(1, 2))

    def test_injection_beyond_size_raises(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, 0, size=2), _inject(1, 1, size=2)])
        with pytest.raises(InvariantViolation, match="beyond declared size"):
            checker.on_event(*_inject(1, 2, size=2))

    def test_out_of_order_ejection_raises(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        checker.on_event(*_eject(1, 1))
        with pytest.raises(InvariantViolation, match="order"):
            checker.on_event(*_eject(1, 0))

    def test_tail_at_wrong_flit_raises(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        checker.on_event(*_eject(1, 0))
        with pytest.raises(InvariantViolation, match="tail"):
            checker.on_event(*_eject(1, 1, tail=True))

    def test_tail_without_full_worm_raises_at_finish(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        # flits 0 and 1 vanished; tail arrives alone
        checker.on_event(*_eject(1, 2, tail=True))
        with pytest.raises(InvariantViolation, match="only 1 of 3"):
            checker.finish()

    def test_double_exit_raises_at_finish(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, 0, size=1)])
        checker.on_event(*_eject(1, 0, tail=True))
        checker.on_event(
            "flit_lost", 6, {"link": "l", "msg": 1, "flit": 0, "down": False}
        )
        with pytest.raises(InvariantViolation, match="exited twice"):
            checker.finish()

    def test_nonmonotone_crossbar_progress_raises(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        xbar = lambda flit: (
            "xbar",
            2,
            {
                "router": 0,
                "port": 0,
                "vc": 0,
                "out_port": 1,
                "out_vc": 0,
                "msg": 1,
                "flit": flit,
            },
        )
        checker.on_event(*xbar(0))
        with pytest.raises(InvariantViolation, match="monotone"):
            checker.on_event(*xbar(2))

    def test_release_without_grant_raises(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="without a matching grant"):
            checker.on_event(
                "vc_release", 3, {"router": 0, "port": 1, "vc": 0, "msg": 9}
            )

    def test_grant_then_release_passes(self):
        checker = InvariantChecker()
        checker.on_event(
            "vc_alloc", 2, {"router": 0, "port": 1, "vc": 0, "msg": 9}
        )
        checker.on_event(
            "vc_release", 3, {"router": 0, "port": 1, "vc": 0, "msg": 9}
        )

    def test_lost_flits_balance_the_ledger(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        for flit in range(3):
            checker.on_event(
                "flit_lost",
                4,
                {"link": "l", "msg": 1, "flit": flit, "down": True},
            )
        checker.finish()

    def test_purge_balances_the_ledger(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        # 5 dropped in total, 2 of them still queued in the NI: only the
        # 3 on-wire flits count against the sent ledger
        checker.on_event("purge", 4, {"msg": 1, "dropped": 5, "ni": 2})
        checker.finish()

    def test_purge_with_bad_ni_split_raises(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="ni"):
            checker.on_event("purge", 4, {"msg": 1, "dropped": 2, "ni": 3})

    def test_in_flight_flits_tolerated_without_network(self):
        checker = InvariantChecker()
        _feed(checker, [_inject(1, i) for i in range(3)])
        checker.on_event(*_eject(1, 0))
        checker.finish()  # 2 in flight; no network to audit against


class TestInvariantCheckerLive:
    """The checker riding a real network via the conftest passthrough."""

    def test_clean_run_passes_with_structural_audit(self):
        checker = InvariantChecker(credit_interval=16)
        network = make_network(trace_sink=checker)
        checker.network = network
        for dst in (1, 2, 3):
            network.inject_now(make_message(src=0, dst=dst, size=5))
        deliver_all(network)
        checker.finish()
        assert checker.events_seen > 0
        assert checker.checks_run > 0

    def test_finish_audits_undrained_network(self):
        checker = InvariantChecker()
        network = make_network(trace_sink=checker)
        network.inject_now(make_message(size=6))
        network.run(3)  # worm still mid-flight
        checker.finish(network)

    def test_corrupted_credit_counter_is_caught(self):
        checker = InvariantChecker()
        network = make_network(trace_sink=checker)
        network.inject_now(make_message(size=6))
        network.run(3)
        # sabotage one NI-side credit counter
        ni = network.interfaces[0]
        ni.vcs[0].credits += 1
        with pytest.raises(InvariantViolation, match="credit drift"):
            checker.finish(network)


class TestValidatorCli:
    """``python -m repro.obs`` — the trace-smoke schema gate."""

    def _write(self, path, records):
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

    def test_valid_file_passes(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [
                {"kind": "flit_inject", "cycle": 0, "node": 0, "vc": 0,
                 "msg": 1, "flit": 0, "size": 4, "cls": "vbr"},
                {"kind": "flit_eject", "cycle": 5, "node": 1, "msg": 1,
                 "flit": 0, "tail": False},
            ],
        )
        assert main([str(path), "--digest"]) == 0
        out = capsys.readouterr().out
        assert "2 events, all valid" in out
        assert "digest:" in out

    def test_bad_record_fails_with_line_number(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "t.jsonl"
        self._write(path, [{"kind": "no_such_kind", "cycle": 0}])
        assert main([str(path)]) == 1
        assert ":1:" in capsys.readouterr().err
