"""CLI flags: --plot, --check, and their interaction."""

import pytest

import repro.experiments.cli as cli
from repro.experiments.figures import PROFILES, RunProfile

TINY = RunProfile("tiny2", scale=100.0, warmup_frames=1, measure_frames=2)


@pytest.fixture(autouse=True)
def tiny_profile(monkeypatch):
    monkeypatch.setitem(PROFILES, "tiny2", TINY)
    import repro.experiments.figures as figures

    monkeypatch.setattr(figures, "DEFAULT_LOADS", (0.4, 0.5))


class TestPlotFlag:
    def test_plot_appends_chart(self, capsys):
        assert cli.main(["run", "fig3", "--profile", "tiny2", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "sigma_d vs input link load" in out
        # series legend marks appear
        assert "o virtual_clock" in out

    def test_no_plot_by_default(self, capsys):
        assert cli.main(["run", "fig3", "--profile", "tiny2"]) == 0
        out = capsys.readouterr().out
        assert "sigma_d vs input link load" not in out


class TestCheckFlag:
    def test_check_prints_claim_verdicts(self, capsys):
        assert cli.main(["run", "fig3", "--profile", "tiny2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "paper claims:" in out
        assert "[PASS]" in out or "[FAIL]" in out

    def test_check_mentions_jitter_free_claim(self, capsys):
        cli.main(["run", "fig4", "--profile", "tiny2", "--check"])
        out = capsys.readouterr().out
        assert "jitter-free" in out

    def test_plot_and_check_combine(self, capsys):
        assert (
            cli.main(
                ["run", "fig3", "--profile", "tiny2", "--plot", "--check"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "paper claims:" in out
        assert "sigma_d vs input link load" in out
