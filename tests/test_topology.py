"""Topology construction: single switch and fat meshes."""

import pytest

from repro.errors import ConfigurationError
from repro.network.topology import (
    Topology,
    fat_mesh,
    fat_mesh_2x2,
    single_switch,
)
from repro.router.routing import SingleSwitchRouting


class TestSingleSwitch:
    def test_default_eight_ports(self):
        topo = single_switch()
        assert topo.num_routers == 1
        assert topo.ports_per_router == 8
        assert topo.num_hosts == 8
        assert not topo.channels

    def test_hosts_map_to_their_port(self):
        topo = single_switch(4)
        assert topo.hosts == [(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)]

    def test_routing_reaches_every_host(self):
        topo = single_switch(5)
        for node in topo.node_ids:
            assert topo.routing.candidates(0, node) == (node,)

    def test_rejects_single_port(self):
        with pytest.raises(ConfigurationError):
            single_switch(1)


class TestFatMesh2x2:
    def test_paper_shape(self):
        topo = fat_mesh_2x2()
        assert topo.num_routers == 4
        assert topo.ports_per_router == 8  # 4 hosts + 2 neighbours x 2 links
        assert topo.num_hosts == 16

    def test_two_links_between_each_neighbour_pair(self):
        topo = fat_mesh_2x2()
        pair_counts = {}
        for src_r, _, dst_r, _ in topo.channels:
            key = (src_r, dst_r)
            pair_counts[key] = pair_counts.get(key, 0) + 1
        # 2x2 mesh: 4 undirected neighbour pairs, 2 links each direction
        assert len(pair_counts) == 8
        assert all(count == 2 for count in pair_counts.values())

    def test_channels_are_symmetric(self):
        topo = fat_mesh_2x2()
        wires = {(s, sp, d, dp) for s, sp, d, dp in topo.channels}
        for s, sp, d, dp in wires:
            assert (d, dp, s, sp) in wires

    def test_local_hosts_route_to_host_port(self):
        topo = fat_mesh_2x2()
        # node 5 = router 1, local port 1
        assert topo.routing.candidates(1, 5) == (1,)

    def test_remote_hosts_route_to_fat_group(self):
        topo = fat_mesh_2x2()
        # router 0 -> a host on router 1 (x neighbour): 2 candidate ports
        ports = topo.routing.candidates(0, 4)
        assert len(ports) == 2
        assert all(p >= 4 for p in ports)

    def test_dimension_order_x_before_y(self):
        topo = fat_mesh_2x2()
        # router 0 (0,0) -> host on router 3 (1,1): must go +X first,
        # which is the same group as going to router 1.
        to_diag = topo.routing.candidates(0, 12)
        to_x = topo.routing.candidates(0, 4)
        assert to_diag == to_x

    def test_every_router_reaches_every_host(self):
        topo = fat_mesh_2x2()
        for router in range(topo.num_routers):
            for node in topo.node_ids:
                assert topo.routing.candidates(router, node)


class TestGeneralFatMesh:
    def test_1xn_chain(self):
        topo = fat_mesh(rows=1, cols=3, hosts_per_router=2, fat_width=1)
        assert topo.num_routers == 3
        # middle router has 2 neighbours, so ports = 2 hosts + 2 links
        assert topo.ports_per_router == 4

    def test_3x3_interior_router_ports(self):
        topo = fat_mesh(rows=3, cols=3, hosts_per_router=2, fat_width=2)
        # interior router: 4 neighbours x 2 links + 2 hosts = 10 ports
        assert topo.ports_per_router == 10

    def test_multi_hop_routes_move_closer(self):
        topo = fat_mesh(rows=1, cols=3, hosts_per_router=1, fat_width=1)
        # router 0 -> host at router 2 must exit toward router 1
        ports = topo.routing.candidates(0, 2)
        channels = {
            (s, sp): d for s, sp, d, _ in topo.channels
        }
        assert all(channels[(0, p)] == 1 for p in ports)

    def test_rejects_single_router(self):
        with pytest.raises(ConfigurationError):
            fat_mesh(rows=1, cols=1)

    def test_rejects_zero_hosts(self):
        with pytest.raises(ConfigurationError):
            fat_mesh(hosts_per_router=0)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            fat_mesh(fat_width=0)


class TestTopologyValidation:
    def test_rejects_duplicate_host_port(self):
        with pytest.raises(ConfigurationError):
            Topology(
                name="bad",
                num_routers=1,
                ports_per_router=2,
                hosts=[(0, 0, 0), (1, 0, 0)],
                channels=[],
                routing=SingleSwitchRouting({0: 0, 1: 0}),
            )

    def test_rejects_host_port_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Topology(
                name="bad",
                num_routers=1,
                ports_per_router=2,
                hosts=[(0, 0, 5)],
                channels=[],
                routing=SingleSwitchRouting({0: 5}),
            )

    def test_rejects_channel_on_host_port(self):
        with pytest.raises(ConfigurationError):
            Topology(
                name="bad",
                num_routers=2,
                ports_per_router=2,
                hosts=[(0, 0, 0), (1, 1, 0)],
                channels=[(0, 0, 1, 1)],  # port (0,0) is a host port
                routing=SingleSwitchRouting({0: 0}),
            )


class TestFatTree:
    def test_shape(self):
        from repro.network.topology import fat_tree

        topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=2, fat_width=1)
        assert topo.num_routers == 6
        assert topo.num_hosts == 8
        # leaf needs 2 hosts + 2 spines x 1 link = 4 ports;
        # spine needs 4 leaves x 1 link = 4 ports
        assert topo.ports_per_router == 4

    def test_every_leaf_spine_pair_wired_both_ways(self):
        from repro.network.topology import fat_tree

        topo = fat_tree(leaves=3, spines=2, hosts_per_leaf=1, fat_width=2)
        wires = {(s, sp, d, dp) for s, sp, d, dp in topo.channels}
        for s, sp, d, dp in wires:
            assert (d, dp, s, sp) in wires
        pairs = {(min(s, d), max(s, d)) for s, _, d, _ in topo.channels}
        assert len(pairs) == 3 * 2  # every leaf-spine pair

    def test_local_delivery_uses_host_port(self):
        from repro.network.topology import fat_tree

        topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=2)
        # node 3 = leaf 1, local port 1
        assert topo.routing.candidates(1, 3) == (1,)

    def test_up_routing_offers_every_spine_link(self):
        from repro.network.topology import fat_tree

        topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=2, fat_width=1)
        # remote destination: both up-links are candidates
        ports = topo.routing.candidates(0, 7)  # node 7 is on leaf 3
        assert len(ports) == 2

    def test_down_routing_is_unique_group(self):
        from repro.network.topology import fat_tree

        topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=2, fat_width=2)
        # spine router 4 routing down to node 5 (leaf 2)
        ports = topo.routing.candidates(4, 5)
        assert ports == (4, 5)  # leaf 2's fat group at the spine

    def test_end_to_end_delivery(self):
        from repro.network.network import Network
        from repro.network.topology import fat_tree
        from repro.router.config import RouterConfig
        from conftest import deliver_all, make_message

        topo = fat_tree(leaves=4, spines=2, hosts_per_leaf=2)
        net = Network(
            topo,
            RouterConfig(num_ports=topo.ports_per_router, vcs_per_pc=2),
        )
        msg = make_message(src=0, dst=7, size=6, src_vc=0, dst_vc=1)
        net.inject_now(msg)
        deliver_all(net)
        assert msg.deliver_time > 0
        net.check_conservation()

    def test_validation(self):
        from repro.network.topology import fat_tree
        import pytest as _pytest

        with _pytest.raises(ConfigurationError):
            fat_tree(leaves=1)
        with _pytest.raises(ConfigurationError):
            fat_tree(spines=0)
        with _pytest.raises(ConfigurationError):
            fat_tree(hosts_per_leaf=0)
        with _pytest.raises(ConfigurationError):
            fat_tree(fat_width=0)
